"""Threaded partitioned-SMR cluster: N groups x R replicas in one process.

The grouped analogue of :class:`~repro.smr.cluster.ThreadedCluster`: every
replica hosts one broadcast node *per group* (each group gets its own
:class:`~repro.broadcast.transport.ThreadedTransport` — groups never
exchange messages, the rendezvous is replica-local), and all of a
replica's group streams feed its :class:`~repro.groups.replica
.GroupedReplica`.

The cluster is also the partition-aware router: client batches are split
by :class:`~repro.groups.partition.PartitionMap` — each single-partition
sub-batch goes straight to its owning group's contact node, each
cross-partition command is wrapped in a
:class:`~repro.groups.messages.Rendezvous` marker and submitted to every
involved group.  Per-group fault plans let the differential suite inject
seeded loss/delay into one group's ordering traffic only.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.broadcast import (
    FaultPlan,
    MultiPaxos,
    SequencerBroadcast,
    ThreadedNode,
    ThreadedTransport,
)
from repro.core.command import Command
from repro.core.cos import DEFAULT_MAX_SIZE
from repro.errors import ConfigurationError, ShutdownError
from repro.groups.messages import Rendezvous, rendezvous_xid
from repro.groups.partition import PartitionMap
from repro.groups.replica import DEFAULT_DEDUP_WINDOW, GroupedReplica
from repro.smr.client import Client
from repro.smr.service import Service

__all__ = ["GroupsConfig", "GroupedCluster"]

ServiceFactory = Callable[[], Service]


@dataclass
class GroupsConfig:
    """Parameters of a threaded grouped deployment."""

    n_groups: int = 2
    n_replicas: int = 3
    service_factory: Optional[ServiceFactory] = None
    #: Registered service name (repro.apps.SERVICES) + factory kwargs, as
    #: an alternative to ``service_factory``.
    service: Optional[str] = None
    service_kwargs: Dict[str, Any] = field(default_factory=dict)
    protocol: str = "paxos"            # "paxos" | "sequencer"
    cos_algorithm: str = "lock-free"
    workers: int = 4
    max_graph_size: int = DEFAULT_MAX_SIZE
    batch_size: int = 64
    heartbeat_interval: float = 0.05
    leader_timeout: float = 0.25
    propose_linger: Optional[float] = None
    cumulative_acks: bool = True
    lease_duration: Optional[float] = None
    lease_margin: Optional[float] = None
    lease_reads: bool = True
    client_timeout: float = 2.0
    #: Windowed dedup size per client (see repro.smr.replica).
    dedup_window: int = DEFAULT_DEDUP_WINDOW
    #: Record merged positions + per-class release order on every replica
    #: (differential suites; grows with the run).
    record_history: bool = False
    #: ``fault_plans[g]`` shapes group ``g``'s transport; shorter lists are
    #: padded with the last entry, empty means no faults anywhere.
    fault_plans: Tuple[FaultPlan, ...] = ()

    def validate(self) -> None:
        if self.n_groups < 1:
            raise ConfigurationError(
                f"n_groups must be >= 1, got {self.n_groups}")
        if self.protocol not in ("paxos", "sequencer"):
            raise ConfigurationError(f"unknown protocol {self.protocol!r}")
        if self.protocol == "paxos" and self.n_replicas % 2 == 0:
            raise ConfigurationError(
                f"paxos needs an odd replica count, got {self.n_replicas}")
        if self.n_replicas < 1:
            raise ConfigurationError("need at least one replica")
        if self.service_factory is None and self.service is None:
            raise ConfigurationError(
                "need a service_factory or a service name")

    def build_service(self) -> Service:
        if self.service_factory is not None:
            return self.service_factory()
        from repro.apps import build_service

        return build_service(self.service, **self.service_kwargs)

    def plan_for(self, group: int) -> FaultPlan:
        if not self.fault_plans:
            return FaultPlan(min_delay=0.0, max_delay=0.0)
        return self.fault_plans[min(group, len(self.fault_plans) - 1)]


class GroupedCluster:
    """A running in-process partitioned replicated service."""

    def __init__(self, config: GroupsConfig):
        config.validate()
        self.config = config
        probe = config.build_service()
        self.partition_map = PartitionMap(probe.conflicts, config.n_groups)
        self._clients: Dict[str, Client] = {}
        self._clients_lock = threading.Lock()
        self._client_counter = itertools.count(1)
        self.transports: List[ThreadedTransport] = [
            ThreadedTransport(config.n_replicas, config.plan_for(group))
            for group in range(config.n_groups)
        ]
        self.grouped: List[GroupedReplica] = []
        #: nodes[group][replica] — one broadcast node per (group, replica).
        self.nodes: List[List[ThreadedNode]] = [
            [] for _ in range(config.n_groups)]
        for replica_id in range(config.n_replicas):
            service = probe if replica_id == 0 else config.build_service()
            grouped = GroupedReplica(
                replica_id,
                service,
                self.partition_map,
                cos_algorithm=config.cos_algorithm,
                workers=config.workers,
                max_graph_size=config.max_graph_size,
                on_response=self._route_response,
                dedup_window=config.dedup_window,
                record_history=config.record_history,
            )
            self.grouped.append(grouped)
            for group in range(config.n_groups):
                self.nodes[group].append(self._build_node(
                    group, replica_id, grouped))
        self._started = False

    # --------------------------------------------------------------- builders

    def _build_protocol(self, replica_id: int) -> Any:
        if self.config.protocol == "sequencer":
            return SequencerBroadcast(replica_id, self.config.n_replicas)
        linger = self.config.propose_linger
        if linger is None:
            linger = self.config.heartbeat_interval / 10
        # Same leader-timeout staggering as ThreadedCluster.  Every group
        # staggers identically, so group leaderships co-locate on the same
        # replica in the steady state — one leader machine, as in a
        # single-group deployment; groups still fail over independently.
        return MultiPaxos(
            replica_id,
            self.config.n_replicas,
            batch_size=self.config.batch_size,
            heartbeat_interval=self.config.heartbeat_interval,
            leader_timeout=self.config.leader_timeout
            * (1 + 0.35 * replica_id),
            propose_linger=linger,
            cumulative_acks=self.config.cumulative_acks,
            lease_duration=self.config.lease_duration,
            lease_margin=self.config.lease_margin,
            lease_reads=self.config.lease_reads,
        )

    def _build_node(self, group: int, replica_id: int,
                    grouped: GroupedReplica) -> ThreadedNode:
        def on_deliver(instance: int, payload: Any,
                       _group: int = group) -> None:
            grouped.on_group_deliver(_group, instance, payload)

        def on_read(payload: Any, _group: int = group) -> None:
            grouped.on_group_read(_group, payload)

        return ThreadedNode(
            replica_id,
            self._build_protocol(replica_id),
            self.transports[group],
            on_deliver,
            name=f"group{group}-node-{replica_id}",
            on_read=on_read,
        )

    # -------------------------------------------------------------- lifecycle

    def start(self) -> "GroupedCluster":
        if self._started:
            raise ShutdownError("cluster already started")
        self._started = True
        for grouped in self.grouped:
            grouped.start()
        for group_nodes in self.nodes:
            for node in group_nodes:
                node.start()
        return self

    def stop(self) -> None:
        for group_nodes in self.nodes:
            for node in group_nodes:
                node.stop()
        for transport in self.transports:
            transport.close()
        for grouped in self.grouped:
            grouped.stop()

    def __enter__(self) -> "GroupedCluster":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------ client

    def client(self, client_id: Optional[str] = None, contact: int = 0,
               timeout: Optional[float] = None) -> Client:
        """Create (and register) a partition-aware client of this cluster."""
        if client_id is None:
            client_id = f"client-{next(self._client_counter)}"
        client = Client(
            client_id,
            self._submit,
            self.config.n_replicas,
            contact=contact,
            timeout=(timeout if timeout is not None
                     else self.config.client_timeout),
        )
        with self._clients_lock:
            if client_id in self._clients:
                raise ConfigurationError(f"duplicate client id {client_id!r}")
            self._clients[client_id] = client
        return client

    def _live_node(self, group: int, contact: int) -> ThreadedNode:
        group_nodes = self.nodes[group]
        node = group_nodes[contact % len(group_nodes)]
        if not node.running:
            node = next((n for n in group_nodes if n.running), None)
            if node is None:
                raise ShutdownError(f"no replica of group {group} is running")
        return node

    def _submit(self, payload: Tuple[Command, ...], contact: int) -> None:
        """Router: split a client batch by owning group (tentpole path)."""
        singles: Dict[int, List[Command]] = {}
        cross: List[Tuple[Tuple[int, ...], Command]] = []
        for command in payload:
            groups = self.partition_map.groups_of(command)
            if len(groups) == 1:
                singles.setdefault(groups[0], []).append(command)
            else:
                cross.append((groups, command))
        for group, commands in singles.items():
            node = self._live_node(group, contact)
            batch = tuple(commands)
            if (self.config.lease_reads
                    and all(not c.writes for c in commands)):
                node.submit_read(batch)
            else:
                node.submit(batch)
        for groups, command in cross:
            marker = Rendezvous(rendezvous_xid(command), groups, command)
            for group in groups:
                self._live_node(group, contact).submit((marker,))

    def _route_response(self, command: Command, response: Any,
                        replica_id: int) -> None:
        with self._clients_lock:
            client = self._clients.get(command.client_id)
        if client is not None:
            client.deliver_response(command, response)

    # ------------------------------------------------------------------ faults

    def crash(self, replica_id: int) -> None:
        """Crash-stop one replica in every group (crash model)."""
        for transport in self.transports:
            transport.crash(replica_id)
        for group_nodes in self.nodes:
            group_nodes[replica_id].stop()
        self.grouped[replica_id].stop(timeout=1.0)

    # --------------------------------------------------------------- helpers

    def services(self) -> List[Service]:
        return [grouped.service for grouped in self.grouped]

    def total_executed(self) -> List[int]:
        return [grouped.executed for grouped in self.grouped]

    def merged_positions(self) -> List[Dict[Hashable, Tuple[int, int]]]:
        return [grouped.merged_positions() for grouped in self.grouped]

    def class_histories(self) -> List[Dict[Hashable, List[Hashable]]]:
        return [grouped.class_histories() for grouped in self.grouped]

    def wait_converged(self, expected: int, timeout: float = 10.0,
                       replicas: Optional[List[int]] = None) -> bool:
        """Poll until the given replicas executed ``expected`` commands and
        their mergers drained; False on timeout (callers assert details)."""
        targets = (replicas if replicas is not None
                   else list(range(self.config.n_replicas)))
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            done = all(
                self.grouped[r].executed >= expected
                and self.grouped[r].merge_idle()
                for r in targets)
            if done:
                return True
            time.sleep(0.01)
        return False
