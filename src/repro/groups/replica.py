"""One replica consuming N consensus groups through a merger.

A :class:`GroupedReplica` is the grouped counterpart of wiring a
:class:`~repro.smr.replica.ParallelReplica` straight to one broadcast
node: every group's delivery callback funnels into one
:class:`~repro.groups.merge.GroupMerger` under a single lock, and released
commands feed the inner replica's COS exactly as single-group deliveries
would — per-class FIFO is preserved because the merger releases each
group's stream in consensus order.

Two grouped-specific concerns live here:

- **dedup**: requests of one client may arrive out of request-id order
  across groups, so the inner replica runs the windowed dedup cache
  (``dedup_window``; see :mod:`repro.smr.replica`);
- **lease reads**: a group leaseholder may serve a local read only when
  every delivered item of that group has been released — a hold in the
  group's stream may hide a write that already completed at another
  replica.  Busy streams defer the read until the group drains.

Per-group observability (docs/observability.md): delivery counters and
merge-lag gauges labelled by group, a rendezvous wait histogram, and
released single/cross counters for the cross-partition ratio.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.core.command import Command
from repro.core.cos import DEFAULT_MAX_SIZE
from repro.groups.merge import Emission, GroupMerger
from repro.groups.messages import Rendezvous
from repro.groups.partition import PartitionMap
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.smr.replica import ParallelReplica, ResponseCallback
from repro.smr.service import Service

__all__ = ["GroupedReplica", "DEFAULT_DEDUP_WINDOW"]

#: Default per-client dedup window; must exceed any client's in-flight
#: request count by a wide margin (client batches are tens of commands).
DEFAULT_DEDUP_WINDOW = 1024


def _flatten_group_items(payload: Any) -> Iterable[Any]:
    """Yield ``Command`` and ``Rendezvous`` leaves of a nested batch."""
    if isinstance(payload, (Command, Rendezvous)):
        yield payload
        return
    if isinstance(payload, (str, bytes, bytearray)):
        raise TypeError(
            f"group batch leaves must be Command or Rendezvous, got "
            f"{type(payload).__name__}: {payload!r:.80}")
    try:
        items = iter(payload)
    except TypeError:
        raise TypeError(
            f"group batch leaves must be Command or Rendezvous, got "
            f"{type(payload).__name__}: {payload!r:.80}") from None
    for item in items:
        yield from _flatten_group_items(item)


class GroupedReplica:
    """N ordered group streams -> one merger -> one COS -> one service."""

    def __init__(
        self,
        replica_id: int,
        service: Service,
        partition_map: PartitionMap,
        cos_algorithm: str = "lock-free",
        workers: int = 4,
        max_graph_size: int = DEFAULT_MAX_SIZE,
        on_response: Optional[ResponseCallback] = None,
        registry: Optional[MetricsRegistry] = None,
        dedup_window: int = DEFAULT_DEDUP_WINDOW,
        record_history: bool = False,
    ):
        self.replica_id = replica_id
        self.partition_map = partition_map
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.replica = ParallelReplica(
            replica_id,
            service,
            cos_algorithm=cos_algorithm,
            workers=workers,
            max_graph_size=max_graph_size,
            on_response=on_response,
            registry=self.registry,
            dedup_window=dedup_window,
        )
        self.merger = GroupMerger(
            partition_map.n_groups,
            record_history=record_history,
            conflicts=service.conflicts,
        )
        self._lock = threading.Lock()
        self._merged_seq = -1
        self._deferred_reads: List[List[Any]] = [
            [] for _ in range(partition_map.n_groups)]
        self._hold_since: Dict[str, float] = {}
        obs = self.registry
        self._obs_on = obs.enabled
        self._m_delivered = [
            obs.counter("group_delivered_total", group=str(group))
            for group in range(partition_map.n_groups)]
        self._g_lag = [
            obs.gauge("group_merge_lag", group=str(group))
            for group in range(partition_map.n_groups)]
        self._m_wait = obs.histogram("rendezvous_wait_seconds")
        self._m_single = obs.counter("group_released_total", kind="single")
        self._m_cross = obs.counter("group_released_total", kind="cross")

    # ------------------------------------------------------------ lifecycle

    @property
    def service(self) -> Service:
        return self.replica.service

    @property
    def executed(self) -> int:
        return self.replica.executed

    def start(self) -> None:
        self.replica.start()

    def stop(self, timeout: float = 5.0) -> None:
        self.replica.stop(timeout=timeout)

    # ------------------------------------------------------------- delivery

    def on_group_deliver(self, group: int, instance: int,
                         payload: Any) -> None:
        """Delivery callback of group ``group``'s broadcast node."""
        del instance  # merged positions come from the merger, not here
        with self._lock:
            emissions: List[Emission] = []
            for item in _flatten_group_items(payload):
                if self._obs_on:
                    self._m_delivered[group].inc()
                    if isinstance(item, Rendezvous):
                        self._hold_since.setdefault(
                            item.xid, time.monotonic())
                emissions.extend(self.merger.offer(group, item))
            self._dispatch(emissions)
            self._flush_deferred_reads()

    def on_group_read(self, group: int, payload: Any) -> None:
        """Leaseholder-local read delivery for one group.

        Safe to execute immediately only when every delivered item of the
        group has been released from the merger; otherwise the read waits
        for the group's stream to drain (a queued hold may hide a write
        that already completed elsewhere — docs/partitioning.md).
        """
        with self._lock:
            if self.merger.pending(group) == 0:
                self.replica.on_local_read(payload)
            else:
                self._deferred_reads[group].append(payload)

    def _dispatch(self, emissions: List[Emission]) -> None:
        for emission in emissions:
            self._merged_seq += 1
            if self._obs_on:
                if emission.cross_partition:
                    self._m_cross.inc()
                    since = self._hold_since.pop(emission.xid, None)
                    if since is not None:
                        self._m_wait.observe(time.monotonic() - since)
                else:
                    self._m_single.inc()
            self.replica.on_deliver(self._merged_seq, emission.command)
        if self._obs_on:
            for group, gauge in enumerate(self._g_lag):
                gauge.set(self.merger.pending(group))

    def _flush_deferred_reads(self) -> None:
        for group, reads in enumerate(self._deferred_reads):
            if reads and self.merger.pending(group) == 0:
                self._deferred_reads[group] = []
                for payload in reads:
                    self.replica.on_local_read(payload)

    # ---------------------------------------------------------- inspection

    def merged_positions(self) -> Dict[Hashable, Tuple[int, int]]:
        """Command key -> merged position (requires record_history)."""
        with self._lock:
            return dict(self.merger.positions)

    def class_histories(self) -> Dict[Hashable, List[Hashable]]:
        """Conflict class -> release order (requires record_history)."""
        with self._lock:
            return {key: list(history)
                    for key, history in self.merger.class_history.items()}

    def merge_idle(self) -> bool:
        with self._lock:
            return self.merger.idle()
