"""Effect vocabulary for runtime-agnostic concurrent algorithms.

The COS algorithms (paper Algorithms 2-7) are written as Python generators
that *yield* effect objects instead of calling blocking primitives directly.
An interpreter — the *runtime* — performs each effect and sends its result
back into the generator:

- :class:`~repro.core.threaded.ThreadedRuntime` performs effects with real
  ``threading`` primitives, so the algorithms run on OS threads.
- :class:`~repro.sim.runtime.SimRuntime` performs effects inside a
  deterministic discrete-event simulator, charging a cost model, so the same
  algorithm code yields the paper's performance experiments without being
  limited by the GIL.

Effects reference abstract primitive handles created through the runtime's
factory methods (see :mod:`repro.core.runtime`), never concrete locks.

Effects are deliberately plain ``__slots__`` classes rather than dataclasses:
tens of millions are constructed during a benchmark run and construction cost
dominates the simulator's inner loop.  Treat instances as immutable.
"""

from __future__ import annotations

from typing import Any, Tuple

__all__ = [
    "Effect",
    "Acquire",
    "Release",
    "Wait",
    "Signal",
    "SignalAll",
    "Down",
    "Up",
    "Load",
    "Store",
    "Cas",
    "Work",
    "effect_targets",
    "effect_is_read",
]


class Effect:
    """Base class for all effects."""

    __slots__ = ()


class Acquire(Effect):
    """Acquire a mutex, blocking until it is free.  Result: ``None``."""

    __slots__ = ("mutex",)

    def __init__(self, mutex: Any):
        self.mutex = mutex

    def __repr__(self) -> str:
        return f"Acquire({self.mutex!r})"


class Release(Effect):
    """Release a held mutex.  Result: ``None``."""

    __slots__ = ("mutex",)

    def __init__(self, mutex: Any):
        self.mutex = mutex

    def __repr__(self) -> str:
        return f"Release({self.mutex!r})"


class Wait(Effect):
    """Wait on a condition variable.

    The condition's mutex must be held; it is atomically released while
    waiting and re-acquired before the effect completes.  Result: ``None``.
    """

    __slots__ = ("condition",)

    def __init__(self, condition: Any):
        self.condition = condition

    def __repr__(self) -> str:
        return f"Wait({self.condition!r})"


class Signal(Effect):
    """Wake one waiter of a condition variable (mutex held).  Result: ``None``."""

    __slots__ = ("condition",)

    def __init__(self, condition: Any):
        self.condition = condition

    def __repr__(self) -> str:
        return f"Signal({self.condition!r})"


class SignalAll(Effect):
    """Wake all waiters of a condition variable (mutex held).  Result: ``None``."""

    __slots__ = ("condition",)

    def __init__(self, condition: Any):
        self.condition = condition

    def __repr__(self) -> str:
        return f"SignalAll({self.condition!r})"


class Down(Effect):
    """P() on a counting semaphore, blocking while its value is zero."""

    __slots__ = ("semaphore",)

    def __init__(self, semaphore: Any):
        self.semaphore = semaphore

    def __repr__(self) -> str:
        return f"Down({self.semaphore!r})"


class Up(Effect):
    """V() on a counting semaphore, ``amount`` times.  Result: ``None``."""

    __slots__ = ("semaphore", "amount")

    def __init__(self, semaphore: Any, amount: int = 1):
        self.semaphore = semaphore
        self.amount = amount

    def __repr__(self) -> str:
        return f"Up({self.semaphore!r}, {self.amount})"


class Load(Effect):
    """Atomically read an atomic cell.  Result: the cell's current value."""

    __slots__ = ("cell",)

    def __init__(self, cell: Any):
        self.cell = cell

    def __repr__(self) -> str:
        return f"Load({self.cell!r})"


class Store(Effect):
    """Atomically write ``value`` into an atomic cell.  Result: ``None``."""

    __slots__ = ("cell", "value")

    def __init__(self, cell: Any, value: Any):
        self.cell = cell
        self.value = value

    def __repr__(self) -> str:
        return f"Store({self.cell!r}, {self.value!r})"


class Cas(Effect):
    """Atomic compare-and-set on an atomic cell.

    If the cell's value equals ``expected`` (by ``==``), replace it with
    ``new`` and return ``True``; otherwise leave it unchanged and return
    ``False``.  This is the paper's ``compareAndSet`` (Alg. 6, line 12).
    """

    __slots__ = ("cell", "expected", "new")

    def __init__(self, cell: Any, expected: Any, new: Any):
        self.cell = cell
        self.expected = expected
        self.new = new

    def __repr__(self) -> str:
        return f"Cas({self.cell!r}, {self.expected!r} -> {self.new!r})"


class Work(Effect):
    """Consume computation time.

    In the simulator this advances virtual time by ``cost`` seconds; the
    threaded runtime treats it as a no-op because the interpreter's real
    Python execution already performs the corresponding work.  Algorithms
    use it to expose their dominant costs (node visits, conflict checks,
    command execution) to the cost model.  Result: ``None``.
    """

    __slots__ = ("cost",)

    def __init__(self, cost: float):
        self.cost = cost

    def __repr__(self) -> str:
        return f"Work({self.cost!r})"


def effect_targets(effect: Effect) -> Tuple[Any, ...]:
    """The primitive handles an effect touches, for independence analysis.

    Two effects performed by different processes *commute* (their order does
    not matter) unless their target sets intersect.  ``Work`` touches nothing;
    condition-variable effects touch both the condition and its mutex, because
    ``Wait`` releases the mutex and ``Signal``/``SignalAll`` requeue waiters
    onto it.
    """
    cls = type(effect)
    if cls is Work:
        return ()
    if cls is Load or cls is Store or cls is Cas:
        return (effect.cell,)
    if cls is Acquire or cls is Release:
        return (effect.mutex,)
    if cls is Down or cls is Up:
        return (effect.semaphore,)
    if cls is Wait or cls is Signal or cls is SignalAll:
        condition = effect.condition
        mutex = getattr(condition, "mutex", None)
        return (condition,) if mutex is None else (condition, mutex)
    raise TypeError(f"unknown effect {effect!r}")


def effect_is_read(effect: Effect) -> bool:
    """True for effects that only observe state (``Load``): two reads of the
    same handle commute, everything else on a shared handle does not."""
    return type(effect) is Load
