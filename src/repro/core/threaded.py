"""Threaded runtime: executes effect generators on real OS threads.

This runtime performs each effect with a ``threading`` primitive, so the COS
algorithms run as genuinely concurrent Python code.  Under CPython's GIL this
cannot demonstrate multi-core *speedup* (see DESIGN.md §2), but it does
exercise real interleavings, which is what the correctness tests need, and
it is a perfectly usable in-process scheduler for I/O-bound services.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Type

from repro.core.command import Command
from repro.core.cos import COS
from repro.core.effects import (
    Acquire,
    Cas,
    Down,
    Effect,
    Load,
    Release,
    Signal,
    SignalAll,
    Store,
    Up,
    Wait,
    Work,
)
from repro.core.runtime import AtomicCell, Condition, EffectGen, Mutex, Runtime, Semaphore

__all__ = ["ThreadedRuntime", "ThreadedCOS"]


class _ThreadedMutex(Mutex):
    __slots__ = ("lock",)

    def __init__(self) -> None:
        self.lock = threading.Lock()


class _ThreadedSemaphore(Semaphore):
    __slots__ = ("sem",)

    def __init__(self, initial: int) -> None:
        self.sem = threading.Semaphore(initial)


class _ThreadedCondition(Condition):
    __slots__ = ("cv",)

    def __init__(self, mutex: _ThreadedMutex) -> None:
        self.cv = threading.Condition(mutex.lock)


class _ThreadedAtomic(AtomicCell):
    """Atomic cell backed by the GIL for load/store and a lock for CAS.

    Attribute reads/writes of a Python object are atomic under the GIL;
    compare-and-set needs a lock to make the read-modify-write step atomic.
    One lock is shared per runtime — CAS throughput is GIL-bound anyway and
    per-cell locks would triple the memory footprint of graph nodes.
    """

    __slots__ = ("value", "_cas_lock")

    def __init__(self, initial: Any, cas_lock: threading.Lock) -> None:
        self.value = initial
        self._cas_lock = cas_lock

    def compare_and_set(self, expected: Any, new: Any) -> bool:
        # Reference CAS (Java AtomicReference semantics): the paper's
        # lock-free graph CASes object identities, and ``==`` would let a
        # CAS succeed against a distinct-but-equal object.
        with self._cas_lock:
            if self.value is expected:
                self.value = new
                return True
            return False


class ThreadedRuntime(Runtime):
    """Runtime executing effect generators with ``threading`` primitives."""

    def __init__(self) -> None:
        self._cas_lock = threading.Lock()
        self._handlers: Dict[Type[Effect], Callable[[Any], Any]] = {
            Acquire: lambda e: e.mutex.lock.acquire(),
            Release: lambda e: e.mutex.lock.release(),
            Wait: lambda e: e.condition.cv.wait(),
            Signal: lambda e: e.condition.cv.notify(),
            SignalAll: lambda e: e.condition.cv.notify_all(),
            Down: lambda e: e.semaphore.sem.acquire(),
            Up: self._up,
            Load: lambda e: e.cell.value,
            Store: self._store,
            Cas: lambda e: e.cell.compare_and_set(e.expected, e.new),
            Work: lambda e: None,
        }

    # ------------------------------------------------------------ factories

    def mutex(self) -> Mutex:
        return _ThreadedMutex()

    def semaphore(self, initial: int = 0) -> Semaphore:
        return _ThreadedSemaphore(initial)

    def condition(self, mutex: Mutex) -> Condition:
        return _ThreadedCondition(mutex)

    def atomic(self, initial: Any = None) -> AtomicCell:
        return _ThreadedAtomic(initial, self._cas_lock)

    # ------------------------------------------------------------ execution

    @staticmethod
    def _up(effect: Up) -> None:
        effect.semaphore.sem.release(effect.amount)

    @staticmethod
    def _store(effect: Store) -> None:
        effect.cell.value = effect.value

    def run(self, gen: EffectGen) -> Any:
        """Drive an effect generator to completion on the calling thread."""
        return self.resume(gen, None)

    def resume(self, gen: EffectGen, result: Any) -> Any:
        """Continue a generator whose previous effect was performed by the
        caller; ``result`` is that effect's result (``None`` for a fresh
        generator)."""
        handlers = self._handlers
        while True:
            try:
                effect = gen.send(result)
            except StopIteration as stop:
                return stop.value
            result = handlers[type(effect)](effect)


class ThreadedCOS:
    """Blocking facade over a COS for plain multithreaded Python code.

    Example::

        runtime = ThreadedRuntime()
        cos = ThreadedCOS(LockFreeCOS(runtime, ReadWriteConflicts()), runtime)
        cos.insert(cmd)            # scheduler thread
        handle = cos.get()         # worker thread, blocks until ready
        ...execute...
        cos.remove(handle)
    """

    def __init__(self, cos: COS, runtime: ThreadedRuntime):
        self._cos = cos
        self._runtime = runtime

    @property
    def algorithm(self) -> COS:
        """The underlying effect-generator implementation."""
        return self._cos

    def insert(self, cmd: Command) -> None:
        self._runtime.run(self._cos.insert(cmd))

    def get(self) -> Any:
        return self._runtime.run(self._cos.get())

    def try_get(self) -> Any:
        """Non-blocking :meth:`get`: a ready handle, or ``None``.

        The ready-counting algorithms (sequential, class-based,
        fine-grained, lock-free, indexed, early) all open ``get()`` by
        downing their ready semaphore, so the probe is a non-blocking
        acquire on it: on success the rest of the generator runs to
        completion exactly as under :meth:`get`.  An algorithm whose
        first effect is anything else (mutex-first coarse-grained could
        block while *holding* the graph mutex) is not probeable; no state
        has been touched at that point, so the generator is simply closed
        and ``None`` returned — callers degrade to batches of one.
        """
        gen = self._cos.get()
        try:
            effect = gen.send(None)
        except StopIteration as stop:
            return stop.value
        if type(effect) is Down:
            if not effect.semaphore.sem.acquire(blocking=False):
                gen.close()
                return None
            # The blocking handler returns acquire()'s result (True).
            return self._runtime.resume(gen, True)
        gen.close()
        return None

    def get_batch(self, max_size: int) -> list:
        """One blocking :meth:`get` plus up to ``max_size - 1`` ready
        handles drained without blocking.  Commands behind the returned
        handles are pairwise non-conflicting (they are all simultaneously
        ready), so they may be executed in any order — or batched."""
        handles = [self.get()]
        while len(handles) < max_size:
            handle = self.try_get()
            if handle is None:
                break
            handles.append(handle)
        return handles

    def remove(self, handle: Any) -> None:
        self._runtime.run(self._cos.remove(handle))

    def command_of(self, handle: Any) -> Command:
        return self._cos.command_of(handle)
