"""Commands and conflict relations.

A *command* is the unit submitted by clients, totally ordered by atomic
broadcast and executed by replicas.  Two commands *conflict* when they access
common state and at least one writes it (paper §1); conflicting commands must
execute in delivery order, while independent commands may run concurrently.

The conflict relation is application knowledge.  This module defines the
:class:`ConflictRelation` protocol plus the relations used by the paper's
linked-list application and by the extra example services.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional, Tuple

__all__ = [
    "Command",
    "ConflictRelation",
    "ReadWriteConflicts",
    "KeyedConflicts",
    "MultiKeyedConflicts",
    "NeverConflicts",
    "AlwaysConflicts",
    "PredicateConflicts",
    "stable_hash",
]


def stable_hash(value: Hashable) -> int:
    """A hash that is identical in every interpreter process.

    The builtin ``hash`` is salted per process for ``str``/``bytes``
    (``PYTHONHASHSEED``), so any key-to-shard or key-to-class mapping built
    on it silently disagrees across OS processes.  Shard routing
    (:mod:`repro.par`) and conflict-class mapping must use this instead:
    ints map to themselves (preserving the uniformity of generated key
    spaces) and everything else goes through CRC-32 of a canonical text
    form.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return zlib.crc32(bytes(value))
    return zlib.crc32(repr(value).encode("utf-8"))

_command_counter = itertools.count()


@dataclass(frozen=True)
class Command:
    """An application command.

    Attributes:
        op: Operation name, interpreted by the application service
            (e.g. ``"contains"`` or ``"add"`` for the linked-list service).
        args: Operation arguments (must be hashable for dedup/history use).
        client_id: Identifier of the submitting client, ``None`` for
            internally generated commands.
        request_id: Client-local sequence number used to match responses.
        uid: Process-wide unique identifier, assigned automatically.
        writes: Whether the command may modify service state.  Used by the
            generic read/write conflict relation; services with richer
            conflict knowledge may ignore it.
    """

    op: str
    args: Tuple[Any, ...] = ()
    client_id: Optional[str] = None
    request_id: int = 0
    uid: int = field(default_factory=lambda: next(_command_counter))
    writes: bool = True

    def __repr__(self) -> str:  # compact, log-friendly
        return f"Command({self.op}{self.args!r}, uid={self.uid})"


#: One entry of a command's conflict footprint: the class it touches and
#: whether it *writes* that class (writers conflict with every member of the
#: class; readers only with its writers).
FootprintEntry = Tuple[Hashable, bool]


class ConflictRelation:
    """Decides whether two commands conflict.

    Subclasses implement :meth:`conflicts`.  The relation must be symmetric:
    ``conflicts(a, b) == conflicts(b, a)``; it need not be reflexive, although
    most useful relations are for write commands.

    Relations that can decompose themselves into *conflict classes* also
    implement :meth:`footprint` and set :attr:`supports_footprint`.  The
    contract: ``conflicts(a, b)`` holds iff some class appears in both
    footprints and at least one of the two commands writes it.  Index-based
    schedulers (:class:`~repro.core.indexed.IndexedCOS`) rely on this to
    find a command's conflicting predecessors in O(|footprint|) instead of
    scanning the whole graph.
    """

    #: True when :meth:`footprint` is implemented (class-decomposable).
    supports_footprint = False

    def conflicts(self, a: Command, b: Command) -> bool:
        raise NotImplementedError

    def footprint(self, cmd: Command) -> Tuple[FootprintEntry, ...]:
        """``((class_key, writes), ...)`` — the classes ``cmd`` touches.

        Class keys must be hashable, distinct within one footprint, and
        identical in every process (use :func:`stable_hash`-safe keys).
        Relations that cannot decompose into classes (arbitrary predicates)
        leave this unimplemented.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not decompose into conflict "
            f"classes; the indexed COS needs a relation with "
            f"supports_footprint=True")

    def class_universe(self) -> Optional[int]:
        """Total number of distinct class keys the relation can emit.

        ``None`` when unbounded or unknown (per-key relations); ``0``
        when footprints are always empty.  Early scheduling
        (:mod:`repro.core.early`) uses this at configuration time to
        size each class's worker set: a small universe spreads every
        class over many lanes, an unbounded one gets exclusive lanes.
        """
        return None

    def __call__(self, a: Command, b: Command) -> bool:
        return self.conflicts(a, b)


class ReadWriteConflicts(ConflictRelation):
    """Two commands conflict iff at least one of them writes.

    This is the conflict model of the paper's linked-list application
    (§7.2): ``contains`` commands do not conflict with each other, but
    conflict with ``add`` commands, which conflict with everything.
    """

    supports_footprint = True

    def conflicts(self, a: Command, b: Command) -> bool:
        return a.writes or b.writes

    def footprint(self, cmd: Command) -> Tuple[FootprintEntry, ...]:
        # One global class; writers conflict with everyone, readers commute.
        return (("rw", cmd.writes),)

    def class_universe(self) -> Optional[int]:
        return 1


class KeyedConflicts(ConflictRelation):
    """Read/write conflicts scoped to a key extracted from each command.

    Commands on different keys never conflict; commands on the same key
    conflict iff at least one writes.  ``key_of`` defaults to the first
    command argument.
    """

    supports_footprint = True

    def __init__(self, key_of: Optional[Callable[[Command], Hashable]] = None):
        self._key_of = key_of or (lambda cmd: cmd.args[0] if cmd.args else None)

    def conflicts(self, a: Command, b: Command) -> bool:
        if not (a.writes or b.writes):
            return False
        return self._key_of(a) == self._key_of(b)

    def footprint(self, cmd: Command) -> Tuple[FootprintEntry, ...]:
        # One class per key; readers of a key commute with each other.
        return ((self._key_of(cmd), cmd.writes),)


class MultiKeyedConflicts(ConflictRelation):
    """Keyed read/write conflicts for commands that touch *several* keys.

    Generalizes :class:`KeyedConflicts` to commands whose footprint spans
    more than one key (multi-key writes, cross-partition transactions):
    two commands conflict iff they share at least one key and at least one
    of them writes.  ``keys_of`` defaults to treating every argument as a
    key, which matches the multi-key operations of the example services
    (``add-all(k1, k2, ...)``).

    This is the relation partitioned ordering (:mod:`repro.groups`) is
    built for: the footprint's keys are exactly the partitions a command
    must be ordered in.
    """

    supports_footprint = True

    def __init__(self, keys_of: Optional[
            Callable[[Command], Tuple[Hashable, ...]]] = None):
        self._keys_of = keys_of or (lambda cmd: tuple(cmd.args))

    def keys_of(self, cmd: Command) -> Tuple[Hashable, ...]:
        """The distinct keys ``cmd`` touches, in first-seen order."""
        seen = dict.fromkeys(self._keys_of(cmd))
        return tuple(seen)

    def conflicts(self, a: Command, b: Command) -> bool:
        if not (a.writes or b.writes):
            return False
        return bool(set(self.keys_of(a)) & set(self.keys_of(b)))

    def footprint(self, cmd: Command) -> Tuple[FootprintEntry, ...]:
        return tuple((key, cmd.writes) for key in self.keys_of(cmd))


class NeverConflicts(ConflictRelation):
    """No two commands conflict (maximum parallelism; paper's 0%-writes case)."""

    supports_footprint = True

    def conflicts(self, a: Command, b: Command) -> bool:
        return False

    def footprint(self, cmd: Command) -> Tuple[FootprintEntry, ...]:
        return ()

    def class_universe(self) -> Optional[int]:
        return 0


class AlwaysConflicts(ConflictRelation):
    """Every pair of commands conflicts (fully sequential execution)."""

    supports_footprint = True

    def conflicts(self, a: Command, b: Command) -> bool:
        return True

    def footprint(self, cmd: Command) -> Tuple[FootprintEntry, ...]:
        # Everybody writes the single class: a total order.
        return (("all", True),)

    def class_universe(self) -> Optional[int]:
        return 1


class PredicateConflicts(ConflictRelation):
    """Adapts an arbitrary symmetric predicate into a ConflictRelation.

    An arbitrary predicate has no class decomposition, so the indexed COS
    rejects it — unless the caller supplies ``footprint_of`` describing the
    classes the predicate is equivalent to.
    """

    def __init__(self, predicate: Callable[[Command, Command], bool],
                 footprint_of: Optional[
                     Callable[[Command], Tuple[FootprintEntry, ...]]] = None):
        self._predicate = predicate
        self._footprint_of = footprint_of
        if footprint_of is not None:
            self.supports_footprint = True

    def conflicts(self, a: Command, b: Command) -> bool:
        return self._predicate(a, b)

    def footprint(self, cmd: Command) -> Tuple[FootprintEntry, ...]:
        if self._footprint_of is None:
            return super().footprint(cmd)
        return tuple(self._footprint_of(cmd))
