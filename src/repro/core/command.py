"""Commands and conflict relations.

A *command* is the unit submitted by clients, totally ordered by atomic
broadcast and executed by replicas.  Two commands *conflict* when they access
common state and at least one writes it (paper §1); conflicting commands must
execute in delivery order, while independent commands may run concurrently.

The conflict relation is application knowledge.  This module defines the
:class:`ConflictRelation` protocol plus the relations used by the paper's
linked-list application and by the extra example services.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional, Tuple

__all__ = [
    "Command",
    "ConflictRelation",
    "ReadWriteConflicts",
    "KeyedConflicts",
    "NeverConflicts",
    "AlwaysConflicts",
    "PredicateConflicts",
    "stable_hash",
]


def stable_hash(value: Hashable) -> int:
    """A hash that is identical in every interpreter process.

    The builtin ``hash`` is salted per process for ``str``/``bytes``
    (``PYTHONHASHSEED``), so any key-to-shard or key-to-class mapping built
    on it silently disagrees across OS processes.  Shard routing
    (:mod:`repro.par`) and conflict-class mapping must use this instead:
    ints map to themselves (preserving the uniformity of generated key
    spaces) and everything else goes through CRC-32 of a canonical text
    form.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return zlib.crc32(bytes(value))
    return zlib.crc32(repr(value).encode("utf-8"))

_command_counter = itertools.count()


@dataclass(frozen=True)
class Command:
    """An application command.

    Attributes:
        op: Operation name, interpreted by the application service
            (e.g. ``"contains"`` or ``"add"`` for the linked-list service).
        args: Operation arguments (must be hashable for dedup/history use).
        client_id: Identifier of the submitting client, ``None`` for
            internally generated commands.
        request_id: Client-local sequence number used to match responses.
        uid: Process-wide unique identifier, assigned automatically.
        writes: Whether the command may modify service state.  Used by the
            generic read/write conflict relation; services with richer
            conflict knowledge may ignore it.
    """

    op: str
    args: Tuple[Any, ...] = ()
    client_id: Optional[str] = None
    request_id: int = 0
    uid: int = field(default_factory=lambda: next(_command_counter))
    writes: bool = True

    def __repr__(self) -> str:  # compact, log-friendly
        return f"Command({self.op}{self.args!r}, uid={self.uid})"


class ConflictRelation:
    """Decides whether two commands conflict.

    Subclasses implement :meth:`conflicts`.  The relation must be symmetric:
    ``conflicts(a, b) == conflicts(b, a)``; it need not be reflexive, although
    most useful relations are for write commands.
    """

    def conflicts(self, a: Command, b: Command) -> bool:
        raise NotImplementedError

    def __call__(self, a: Command, b: Command) -> bool:
        return self.conflicts(a, b)


class ReadWriteConflicts(ConflictRelation):
    """Two commands conflict iff at least one of them writes.

    This is the conflict model of the paper's linked-list application
    (§7.2): ``contains`` commands do not conflict with each other, but
    conflict with ``add`` commands, which conflict with everything.
    """

    def conflicts(self, a: Command, b: Command) -> bool:
        return a.writes or b.writes


class KeyedConflicts(ConflictRelation):
    """Read/write conflicts scoped to a key extracted from each command.

    Commands on different keys never conflict; commands on the same key
    conflict iff at least one writes.  ``key_of`` defaults to the first
    command argument.
    """

    def __init__(self, key_of: Optional[Callable[[Command], Hashable]] = None):
        self._key_of = key_of or (lambda cmd: cmd.args[0] if cmd.args else None)

    def conflicts(self, a: Command, b: Command) -> bool:
        if not (a.writes or b.writes):
            return False
        return self._key_of(a) == self._key_of(b)


class NeverConflicts(ConflictRelation):
    """No two commands conflict (maximum parallelism; paper's 0%-writes case)."""

    def conflicts(self, a: Command, b: Command) -> bool:
        return False


class AlwaysConflicts(ConflictRelation):
    """Every pair of commands conflicts (fully sequential execution)."""

    def conflicts(self, a: Command, b: Command) -> bool:
        return True


class PredicateConflicts(ConflictRelation):
    """Adapts an arbitrary symmetric predicate into a ConflictRelation."""

    def __init__(self, predicate: Callable[[Command, Command], bool]):
        self._predicate = predicate

    def conflicts(self, a: Command, b: Command) -> bool:
        return self._predicate(a, b)
