"""Class-based (early) scheduling — the related-work alternative to DAGs.

The paper's dependency graph tracks *pairwise* conflicts; the competing line
of work it cites (early scheduling, Alchieri et al. 2018 [2]) partitions
commands into **conflict classes** known a priori.  Every class keeps a FIFO
queue; a command is enqueued in each of its classes at delivery time and is
executable once it reaches the *head of every queue it belongs to*.

Trade-off against the lock-free DAG, explored by
``benchmarks/bench_class_based.py``:

- ``insert`` is O(#classes of the command) — no full-graph walk, so the
  scheduler thread never becomes the bottleneck;
- but commands in one class serialize even when they would commute (two
  reads of the same class cannot overlap), so read-heavy single-class
  workloads lose the parallelism a DAG exposes.

The implementation follows the COS effect-generator contract, so it runs on
both the threaded runtime and the simulator and can be compared with the
paper's three schedulers under identical harnesses.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Hashable, Optional, Tuple

from repro.core.command import Command, ConflictRelation, stable_hash
from repro.core.cos import COS, DEFAULT_MAX_SIZE, StructureCosts
from repro.core.effects import Acquire, Down, Release, Up, Work
from repro.core.runtime import EffectGen, Runtime

__all__ = ["ClassBasedCOS", "ClassConflicts", "read_write_classes"]

# Maps a command to the conflict classes it participates in.
ClassesOf = Callable[[Command], Tuple[Hashable, ...]]


def read_write_classes(shards: int = 1) -> ClassesOf:
    """The paper's readers/writers model expressed as conflict classes.

    Reads join the single class of their key shard; writes join *all*
    shards.  With ``shards=1`` this is exactly the linked-list service's
    conflict structure — and shows class scheduling's weakness: reads of
    the one class serialize.  More shards recover read parallelism at the
    cost of writes synchronizing every shard queue.
    """

    def classes_of(command: Command) -> Tuple[Hashable, ...]:
        if command.writes:
            return tuple(range(shards))
        key = command.args[0] if command.args else 0
        # stable_hash, not hash: replicas in different OS processes must
        # agree on the class of every command or their schedules diverge.
        return (stable_hash(key) % shards,)

    return classes_of


class ClassConflicts(ConflictRelation):
    """Two commands conflict iff they share a conflict class."""

    supports_footprint = True

    def __init__(self, classes_of: ClassesOf, universe: Optional[int] = None):
        self._classes_of = classes_of
        self._universe = universe

    def conflicts(self, a: Command, b: Command) -> bool:
        return bool(set(self._classes_of(a)) & set(self._classes_of(b)))

    def footprint(self, cmd: Command):
        # Class membership conflicts regardless of read/write intent, so
        # every entry is a write of its class.
        return tuple((cls, True) for cls in self._classes_of(cmd))

    def class_universe(self) -> Optional[int]:
        # ``classes_of`` is an arbitrary callable, so the universe is
        # unknown unless the caller declares it at construction.
        return self._universe


class _ClassNode:
    __slots__ = ("cmd", "classes", "pending")

    def __init__(self, cmd: Command, classes: Tuple[Hashable, ...]):
        self.cmd = cmd
        self.classes = classes
        # Number of this node's class queues where it is not yet at the head.
        self.pending = 0


class ClassBasedCOS(COS):
    """COS over per-class FIFO queues (early scheduling)."""

    def __init__(
        self,
        runtime: Runtime,
        classes_of: ClassesOf,
        max_size: int = DEFAULT_MAX_SIZE,
        costs: StructureCosts = StructureCosts.zero(),
    ):
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self._classes_of = classes_of
        self._costs = costs
        self._mutex = runtime.mutex()
        self._space = runtime.semaphore(max_size)
        self._ready = runtime.semaphore(0)
        self._queues: Dict[Hashable, Deque[_ClassNode]] = {}
        self._ready_queue: Deque[_ClassNode] = deque()

    # ------------------------------------------------------------------ API

    def insert(self, cmd: Command) -> EffectGen:
        yield Down(self._space)
        classes = tuple(self._classes_of(cmd))
        if not classes:
            raise ValueError(f"{cmd} belongs to no conflict class")
        node = _ClassNode(cmd, classes)
        visit = self._costs.insert_visit
        yield Acquire(self._mutex)
        for cls in classes:
            if visit:
                yield Work(visit)
            queue = self._queues.setdefault(cls, deque())
            if queue:
                node.pending += 1  # someone ahead of us in this class
            queue.append(node)
        is_ready = node.pending == 0
        if is_ready:
            self._ready_queue.append(node)
        yield Release(self._mutex)
        if is_ready:
            yield Up(self._ready)

    def get(self) -> EffectGen:
        yield Down(self._ready)
        if self._costs.get_visit:
            yield Work(self._costs.get_visit)
        yield Acquire(self._mutex)
        node = self._ready_queue.popleft()
        yield Release(self._mutex)
        return node

    def remove(self, handle: _ClassNode) -> EffectGen:
        visit = self._costs.remove_visit
        freed = 0
        yield Acquire(self._mutex)
        for cls in handle.classes:
            if visit:
                yield Work(visit)
            queue = self._queues[cls]
            if not queue or queue[0] is not handle:
                yield Release(self._mutex)
                raise LookupError(
                    f"{handle.cmd!r} is not at the head of class {cls!r}")
            queue.popleft()
            if queue:
                successor = queue[0]
                successor.pending -= 1
                if successor.pending == 0:
                    self._ready_queue.append(successor)
                    freed += 1
            else:
                del self._queues[cls]
        yield Release(self._mutex)
        if freed:
            yield Up(self._ready, freed)
        yield Up(self._space)

    # ---------------------------------------------------------- inspection

    def conflict_relation(self) -> ClassConflicts:
        """The pairwise relation induced by this scheduler's classes."""
        return ClassConflicts(self._classes_of)
