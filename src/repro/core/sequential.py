"""FIFO Conflict-Ordered Set for classic (sequential) SMR.

Classic SMR executes every command in delivery order on a single worker
(paper §3.1, Fig. 1a).  That is exactly a COS whose conflict relation is
total: ``get`` hands out commands strictly in insertion order, one at a
time.  Modelling it as a COS lets the sequential-SMR baseline of Figs. 4-5
reuse the same replica machinery as the parallel techniques.

The implementation keeps a bounded FIFO guarded by a mutex, with ``space``
and ``ready`` semaphores providing the blocking behaviour.  A command is
only made available after its predecessor was removed, which serializes
execution even if the replica is (mis)configured with several workers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.core.command import Command
from repro.core.cos import COS, DEFAULT_MAX_SIZE, StructureCosts
from repro.core.effects import Acquire, Down, Release, Up, Work
from repro.core.runtime import EffectGen, Runtime

__all__ = ["SequentialCOS", "SequentialHandle"]


class SequentialHandle:
    """Handle returned by :meth:`SequentialCOS.get`."""

    __slots__ = ("cmd", "seq")

    def __init__(self, cmd: Command, seq: int):
        self.cmd = cmd
        self.seq = seq

    def __repr__(self) -> str:
        return f"SequentialHandle(seq={self.seq}, {self.cmd!r})"


class SequentialCOS(COS):
    """Totally ordered COS: commands execute strictly one at a time."""

    def __init__(
        self,
        runtime: Runtime,
        max_size: int = DEFAULT_MAX_SIZE,
        costs: StructureCosts = StructureCosts.zero(),
    ):
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self._costs = costs
        self._mutex = runtime.mutex()
        self._queue: Deque[SequentialHandle] = deque()
        self._space = runtime.semaphore(max_size)
        self._ready = runtime.semaphore(0)
        self._in_flight: Optional[SequentialHandle] = None
        self._next_seq = 0

    def insert(self, cmd: Command) -> EffectGen:
        yield Down(self._space)
        handle = SequentialHandle(cmd, self._next_seq)
        self._next_seq += 1
        yield Acquire(self._mutex)
        self._queue.append(handle)
        # The head of the queue is executable only when nothing is running.
        signal = self._in_flight is None and len(self._queue) == 1
        yield Release(self._mutex)
        if signal:
            yield Up(self._ready)

    def get(self) -> EffectGen:
        yield Down(self._ready)
        if self._costs.get_visit:
            yield Work(self._costs.get_visit)
        yield Acquire(self._mutex)
        handle = self._queue.popleft()
        self._in_flight = handle
        yield Release(self._mutex)
        return handle

    def remove(self, handle: SequentialHandle) -> EffectGen:
        if self._costs.remove_visit:
            yield Work(self._costs.remove_visit)
        yield Acquire(self._mutex)
        if self._in_flight is not handle:
            yield Release(self._mutex)
            raise LookupError(f"{handle!r} is not the executing command")
        self._in_flight = None
        signal = bool(self._queue)
        yield Release(self._mutex)
        if signal:
            yield Up(self._ready)
        yield Up(self._space)
