"""Fine-grained DAG scheduler with hand-over-hand locking (paper Algs. 3-4).

Locks live on individual nodes instead of the whole graph.  Every operation
walks the delivery-ordered node list from the head sentinel using *lock
coupling* (lock the successor before unlocking the current node), so
concurrent operations pipeline behind one another without overtaking — the
total order induced by atomic broadcast is exactly the lock acquisition
order, which rules out deadlock (paper §5, correctness argument).

Faithful points:

- ``insert`` is called sequentially in delivery order; it locks the new node,
  walks the whole list adding edges from conflicting resident nodes
  (Alg. 4 l. 7-12), appends the node at the tail and signals ``ready`` when
  the node has no dependencies.
- ``get`` downs the ``ready`` semaphore, then walks the list for the oldest
  free, waiting node (Alg. 4 l. 17-28).
- ``remove`` walks the list; once it reaches the removed node it keeps that
  node locked (Alg. 4 l. 34), unlinks it, and continues walking to delete
  the node's outgoing edges, upping ``ready`` for every node freed
  (l. 36-38), finally upping ``space``.

Documented divergence (see DESIGN.md): the paper's ``get`` pseudocode assumes
the walk always finds a ready node, but a node can become ready *behind* an
in-flight walk (the semaphore guarantees existence, not position).  Our
``get`` restarts from the head in that case; the restart is charged to the
cost model and exercised by the stress tests.
"""

from __future__ import annotations

from repro.core.command import Command, ConflictRelation
from repro.core.cos import COS, DEFAULT_MAX_SIZE, StructureCosts
from repro.core.effects import Acquire, Down, Release, Up, Work
from repro.core.node import EXECUTING, WAITING, FineNode
from repro.core.runtime import EffectGen, Runtime
from repro.obs.registry import NULL_REGISTRY
from repro.obs.spans import span_key

__all__ = ["FineGrainedCOS"]

_HEAD_SEQ = -1
_TAIL_SEQ = 2**62  # larger than any real sequence number


class FineGrainedCOS(COS):
    """COS implementation with per-node locks and lock coupling."""

    def __init__(
        self,
        runtime: Runtime,
        conflicts: ConflictRelation,
        max_size: int = DEFAULT_MAX_SIZE,
        costs: StructureCosts = StructureCosts.zero(),
        obs=None,
    ):
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self._runtime = runtime
        self._conflicts = conflicts
        self._costs = costs
        self._space = runtime.semaphore(max_size)
        self._ready = runtime.semaphore(0)
        # Sentinels bracket the delivery-ordered list (Alg. 3 l. 12-13).
        self._head = FineNode(None, _HEAD_SEQ, runtime, sentinel=True)
        self._tail = FineNode(None, _TAIL_SEQ, runtime, sentinel=True)
        self._head.nxt = self._tail
        self._next_seq = 0
        # Instrumentation (docs/observability.md); pure Python only — no
        # effects are added, so simulated schedules do not change.
        obs = obs if obs is not None else NULL_REGISTRY
        self._obs = obs
        self._obs_on = obs.enabled
        self._m_occupancy = obs.gauge("cos_graph_size")
        self._m_inserts = obs.counter("cos_inserts_total")
        self._m_gets = obs.counter("cos_gets_total")
        self._m_removes = obs.counter("cos_removes_total")
        self._m_restarts = obs.counter("cos_traversal_restarts_total")
        self._m_space_wait = obs.histogram("cos_space_wait_seconds")
        self._m_ready_wait = obs.histogram("cos_ready_wait_seconds")
        self._m_insert_visits = obs.counter("cos_insert_visits_total")

    # ------------------------------------------------------------------ API

    def insert(self, cmd: Command) -> EffectGen:
        obs_on = self._obs_on
        entered = self._obs.clock() if obs_on else 0.0
        yield Down(self._space)
        if obs_on:
            self._m_space_wait.observe(self._obs.clock() - entered)
        node = FineNode(cmd, self._next_seq, self._runtime)
        self._next_seq += 1
        yield Acquire(node.mutex)
        yield Acquire(self._head.mutex)
        prev = self._head
        cur = prev.nxt
        visit = self._costs.insert_visit
        edge = self._costs.edge
        conflicts = self._conflicts.conflicts
        visited = 0
        while cur is not self._tail:
            yield Acquire(cur.mutex)
            yield Release(prev.mutex)
            visited += 1
            if visit:
                yield Work(visit)
            if conflicts(cur.cmd, cmd):
                if edge:
                    yield Work(edge)
                node.deps_in.add(cur)
            prev = cur
            cur = cur.nxt
        # prev is the last list element (possibly the head sentinel) and is
        # locked; link the new node in front of the tail sentinel.
        yield Acquire(self._tail.mutex)
        node.nxt = self._tail
        prev.nxt = node
        yield Release(self._tail.mutex)
        is_ready = not node.deps_in
        if obs_on:
            self._m_inserts.inc()
            self._m_insert_visits.inc(visited)
            self._m_occupancy.inc()
            if is_ready:
                self._obs.span(span_key(cmd), "ready")
        yield Release(prev.mutex)
        yield Release(node.mutex)
        if is_ready:
            yield Up(self._ready)

    def get(self) -> EffectGen:
        obs_on = self._obs_on
        entered = self._obs.clock() if obs_on else 0.0
        yield Down(self._ready)
        if obs_on:
            self._m_ready_wait.observe(self._obs.clock() - entered)
        visit = self._costs.get_visit
        while True:
            yield Acquire(self._head.mutex)
            prev = self._head
            cur = prev.nxt
            while cur is not self._tail:
                yield Acquire(cur.mutex)
                yield Release(prev.mutex)
                if visit:
                    yield Work(visit)
                if cur.status == WAITING and not cur.deps_in:
                    cur.status = EXECUTING
                    if obs_on:
                        self._m_gets.inc()
                    yield Release(cur.mutex)
                    return cur
                prev = cur
                cur = cur.nxt
            yield Release(prev.mutex)
            # The ready node slipped behind the walk; restart from the head.
            if obs_on:
                self._m_restarts.inc()
            if self._costs.retry_backoff:
                yield Work(self._costs.retry_backoff)

    def remove(self, handle: FineNode) -> EffectGen:
        visit = self._costs.remove_visit
        yield Acquire(self._head.mutex)
        prev = self._head
        cur = prev.nxt
        # Phase 1: walk to the node being removed.
        while cur is not handle:
            if cur is self._tail:  # pragma: no cover - defensive
                yield Release(prev.mutex)
                raise LookupError(f"{handle!r} is not in the graph")
            yield Acquire(cur.mutex)
            yield Release(prev.mutex)
            if visit:
                yield Work(visit)
            prev = cur
            cur = cur.nxt
        # prev and handle's predecessor position reached: lock the node,
        # unlink it, keep it locked while clearing its outgoing edges
        # (Alg. 4 l. 34 keeps the lock on the node being deleted).
        yield Acquire(handle.mutex)
        prev.nxt = handle.nxt
        yield Release(prev.mutex)
        # Phase 2 walks with full lock coupling so it can never overtake an
        # in-flight insert walk; otherwise it could finish before a new
        # dependent of ``handle`` is linked and leave a dangling edge.
        cur = handle.nxt
        freed = 0
        if cur is not self._tail:
            yield Acquire(cur.mutex)
        edge = self._costs.edge
        while cur is not self._tail:
            if visit:
                yield Work(visit)
            if handle in cur.deps_in:
                if edge:
                    yield Work(edge)
                cur.deps_in.discard(handle)
                if not cur.deps_in and cur.status == WAITING:
                    freed += 1
                    if self._obs_on:
                        self._obs.span(span_key(cur.cmd), "ready")
            nxt = cur.nxt
            if nxt is not self._tail:
                yield Acquire(nxt.mutex)
            yield Release(cur.mutex)
            cur = nxt
        yield Release(handle.mutex)
        if self._obs_on:
            self._m_removes.inc()
            self._m_occupancy.dec()
        if freed:
            yield Up(self._ready, freed)
        yield Up(self._space)
