"""Abstract runtime interface for effect-based algorithms.

A :class:`Runtime` manufactures synchronization primitives (mutexes,
semaphores, condition variables, atomic cells) and knows how to execute
effect generators that operate on them.  Algorithms only ever hold opaque
handles created by *their* runtime, which keeps Algorithm 2-7 code identical
across the threaded and simulated execution environments.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Generator

from repro.core.effects import Effect

__all__ = [
    "Mutex",
    "Semaphore",
    "Condition",
    "AtomicCell",
    "Runtime",
    "EffectGen",
]

# Algorithms are generators that yield effects and receive effect results.
EffectGen = Generator[Effect, Any, Any]


class Mutex(ABC):
    """Opaque mutual-exclusion handle.  Operated on via Acquire/Release."""


class Semaphore(ABC):
    """Opaque counting-semaphore handle.  Operated on via Down/Up."""


class Condition(ABC):
    """Opaque condition-variable handle, bound to a mutex at creation."""


class AtomicCell(ABC):
    """Opaque linearizable register handle.  Operated on via Load/Store/Cas."""


class Runtime(ABC):
    """Factory for primitives plus an executor for effect generators."""

    @abstractmethod
    def mutex(self) -> Mutex:
        """Create a new, unlocked mutex."""

    @abstractmethod
    def semaphore(self, initial: int = 0) -> Semaphore:
        """Create a counting semaphore with the given initial value."""

    @abstractmethod
    def condition(self, mutex: Mutex) -> Condition:
        """Create a condition variable associated with ``mutex``."""

    @abstractmethod
    def atomic(self, initial: Any = None) -> AtomicCell:
        """Create an atomic cell holding ``initial``."""
