"""Graph node records used by the COS implementations.

Each COS implementation stores commands in *nodes* of a dependency DAG whose
edges point from older commands to the newer commands that conflict with
them (paper §3.2).  Node statuses follow the paper's life cycle:

``WAITING`` (wtg) -> ``READY`` (rdy) -> ``EXECUTING`` (exe) -> ``REMOVED`` (rmd)

The coarse- and fine-grained graphs only materialize ``WAITING``/``EXECUTING``
(readiness is recomputed from incoming edges, Algs. 2 and 4), while the
lock-free graph materializes all four states in an atomic cell (Alg. 6).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from repro.core.command import Command
from repro.core.runtime import Runtime

__all__ = [
    "WAITING",
    "READY",
    "EXECUTING",
    "REMOVED",
    "CoarseNode",
    "FineNode",
    "LockFreeNode",
    "IndexedNode",
]

WAITING = "wtg"
READY = "rdy"
EXECUTING = "exe"
REMOVED = "rmd"


class CoarseNode:
    """Node of the coarse-grained DAG (Alg. 2).

    All fields are guarded by the graph's single monitor lock, so plain
    attributes suffice.
    """

    __slots__ = ("cmd", "seq", "status", "deps_in", "deps_out")

    def __init__(self, cmd: Command, seq: int):
        self.cmd = cmd
        self.seq = seq
        self.status = WAITING
        # Nodes this one depends on (incoming edges) / that depend on it.
        # deps_out is an insertion-ordered dict used as an ordered set so
        # that remove() iterates dependents deterministically (plain sets
        # iterate in id-hash order, which varies across runs and would break
        # simulation determinism).
        self.deps_in: Set["CoarseNode"] = set()
        self.deps_out: Dict["CoarseNode", None] = {}

    def __repr__(self) -> str:
        return f"CoarseNode(seq={self.seq}, {self.status}, {self.cmd!r})"


class FineNode:
    """Node of the fine-grained, hand-over-hand locked DAG (Algs. 3-4).

    Every node carries its own mutex; a walker must hold a node's mutex to
    read or write ``status``, ``deps_in`` or ``nxt`` (the successor link of
    the delivery-ordered list).  Sentinel nodes carry no command.
    """

    __slots__ = ("cmd", "seq", "mutex", "status", "deps_in", "nxt", "sentinel")

    def __init__(self, cmd: Optional[Command], seq: int, runtime: Runtime,
                 sentinel: bool = False):
        self.cmd = cmd
        self.seq = seq
        self.mutex = runtime.mutex()
        self.status = WAITING
        self.deps_in: Set["FineNode"] = set()
        self.nxt: Optional["FineNode"] = None
        self.sentinel = sentinel

    def __repr__(self) -> str:
        kind = "sentinel" if self.sentinel else self.status
        return f"FineNode(seq={self.seq}, {kind}, {self.cmd!r})"


class LockFreeNode:
    """Node of the lock-free DAG (Alg. 6).

    ``st`` is the atomic state cell driven by compare-and-set; ``dep_on`` and
    ``dep_me`` hold immutable snapshots (a frozenset and a tuple) inside
    atomic cells so that concurrent readers always observe a consistent set
    while the single insert thread publishes new snapshots; ``nxt`` is the
    atomic successor reference in arrival order (Alg. 6, line 7).

    ``dep_on`` starts as ``None`` — *unpublished*.  While the insert is still
    traversing the graph, a concurrent ``lfRemove`` of an already-collected
    dependency could otherwise observe a prefix of the dependency set and
    wrongly mark this node ready before its remaining conflicts are recorded
    (the hazard the paper flags in §6.2: "a node could be wrongly considered
    ready for execution due to missing dependencies under insertion").
    ``testReady`` treats ``None`` as "not ready"; the insert publishes the
    complete frozenset immediately before linking the node.
    """

    __slots__ = ("cmd", "seq", "st", "dep_on", "dep_me", "nxt")

    def __init__(self, cmd: Command, seq: int, runtime: Runtime):
        self.cmd = cmd
        self.seq = seq
        self.st = runtime.atomic(WAITING)
        self.dep_on = runtime.atomic(None)  # None = dependency set unpublished
        self.dep_me = runtime.atomic(())
        self.nxt = runtime.atomic(None)

    def __repr__(self) -> str:
        return f"LockFreeNode(seq={self.seq}, {self.cmd!r})"


class IndexedNode:
    """Node of the indexed lock-free DAG (:mod:`repro.core.indexed`).

    ``st`` follows the same four-state life cycle as the lock-free graph,
    but readiness is driven by ``pending`` — an atomic count of conflicting
    predecessors still in the structure (plus one *insertion guard* held by
    the inserting thread, so the node cannot turn ready while its edges are
    still being registered).  ``dep_me`` holds the dependents tuple until
    the node's remover *seals* it (swaps in a sentinel), atomically claiming
    the set of nodes whose counters it must decrement; an inserter that
    finds the seal knows the predecessor can no longer block it.  ``qnext``
    links the node into the lock-free FIFO ready queue.  ``footprint`` is
    the conflict-class footprint captured at insert, needed to prune the
    node from its index entries on removal.  ``deps_dbg`` records the
    predecessors an edge was registered to — plain data for tests, never
    read by the algorithm.
    """

    __slots__ = ("cmd", "seq", "footprint", "st", "pending", "dep_me",
                 "qnext", "deps_dbg")

    def __init__(self, cmd: Command, seq: int, runtime: Runtime,
                 footprint: tuple = ()):
        self.cmd = cmd
        self.seq = seq
        self.footprint = footprint
        self.st = runtime.atomic(WAITING)
        self.pending = runtime.atomic(1)  # 1 = the insertion guard
        self.dep_me = runtime.atomic(())
        self.qnext = runtime.atomic(None)
        self.deps_dbg: list = []

    def __repr__(self) -> str:
        return f"IndexedNode(seq={self.seq}, {self.cmd!r})"


def _unused(*_: Any) -> None:  # pragma: no cover - placating linters
    pass
