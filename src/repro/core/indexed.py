"""Indexed lock-free DAG scheduler: O(|footprint|) insert.

The paper's lock-free graph (Algs. 5-7) makes ``get``/``remove`` scale,
but its sequential ``insert`` still walks the *entire* arrival list
checking conflicts — O(graph size) per command, so at the paper's
max_size of 150 the scheduler thread becomes the next bottleneck once
workers stop contending.  This module removes that walk while keeping
the full pairwise-conflict semantics (reads still commute — the property
class-based *early scheduling* gives up, see
:mod:`repro.core.class_based` and docs/scheduling.md).

The idea, following the index-based scheduling line of related work: the
conflict relation decomposes commands into **conflict classes**
(:meth:`repro.core.command.ConflictRelation.footprint`), and for each
class the scheduler maintains one atomic *index entry*::

    (last_writer, readers_since_last_write)

``insert`` touches only the entries in the command's footprint:

- a **writer** of the class conflicts with the entry's last writer and
  every reader since — it links edges to those, then becomes the new
  last writer (resetting the readers);
- a **reader** conflicts only with the last writer — it links one edge
  and appends itself to the readers.

These direct edges are the *transitive reduction* of the lock-free
graph's "every live conflicting predecessor" edge set: a displaced
writer already carries edges to everything it conflicted with, and
removal order (a node is removed only after executing, hence only after
everything it depended on was removed) makes the closure collapse —
"last writer removed" implies "its whole conflict closure removed".
Ready-sets are therefore identical to the lock-free graph's at every
point (tests/test_indexed_differential.py checks this directly).

Readiness bookkeeping replaces dep-set rescans with a per-node atomic
**pending-predecessor counter**:

- ``insert`` initializes it to 1 (the *insertion guard*), increments it
  *before* registering each edge, and drops the guard last, so the node
  can never be observed ready while edges are still being registered
  (the same hazard the lock-free graph closes by publishing ``dep_on``
  late, paper §6.2).
- ``remove`` first **seals** the node's dependent list (CAS-swapping a
  sentinel into ``dep_me``), atomically claiming the exact set of
  counters it must decrement; an inserter that finds the seal skips the
  edge and undoes its provisional increment — the predecessor's removal
  has already linearized, so it can no longer block anyone.
- whoever decrements a counter to zero owns the ``wtg -> rdy``
  transition and enqueues the node onto a lock-free FIFO ready queue
  (Michael & Scott's two-pointer queue); ``get`` dequeues in O(1)
  instead of walking the graph.  FIFO keeps independent commands coming
  out in insertion order, matching the lock-free graph's head-first
  arrival walk.

The ready queue is ABA-free here because a node is enqueued exactly
once in its lifetime (the counter reaches zero exactly once).  The
per-class dict itself is only ever *grown*, by the single inserting
thread; entries of quiescent classes shrink to ``(None, ())`` as their
nodes are pruned on removal, but the keys stay — bounded by the key
space, the price of lock-free readers (see docs/scheduling.md).

Like every COS here, the algorithm is an effect generator: it runs
unchanged on OS threads, on the deterministic simulator, and under the
:mod:`repro.check` schedule-space explorer.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from repro.core.command import Command, ConflictRelation
from repro.core.cos import COS, DEFAULT_MAX_SIZE, StructureCosts
from repro.core.effects import Cas, Down, Load, Store, Up, Work
from repro.core.node import EXECUTING, READY, REMOVED, WAITING, IndexedNode
from repro.core.runtime import EffectGen, Runtime
from repro.obs.registry import NULL_REGISTRY
from repro.obs.spans import span_key

__all__ = ["IndexedCOS"]


class _Sealed:
    """Sentinel stored in ``dep_me`` once a remover claims the dependents."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<sealed>"


_SEALED = _Sealed()

#: Index entry of a class nobody currently writes or reads.
_EMPTY_ENTRY = (None, ())


class _ReadySentinel:
    """Initial dummy node of the Michael–Scott ready queue.

    Only its ``qnext`` cell is ever touched; after the first dequeue the
    dummy role passes to dequeued :class:`IndexedNode` objects, whose
    ``qnext`` serves the same purpose.
    """

    __slots__ = ("qnext",)

    def __init__(self, runtime: Runtime):
        self.qnext = runtime.atomic(None)

    def __repr__(self) -> str:
        return "<ready-sentinel>"


class IndexedCOS(COS):
    """COS with per-conflict-class index and counter-based readiness."""

    def __init__(
        self,
        runtime: Runtime,
        conflicts: ConflictRelation,
        max_size: int = DEFAULT_MAX_SIZE,
        costs: StructureCosts = StructureCosts.zero(),
        obs=None,
    ):
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        if not getattr(conflicts, "supports_footprint", False):
            raise ValueError(
                f"IndexedCOS requires a conflict relation that decomposes "
                f"into classes (supports_footprint=True); "
                f"{type(conflicts).__name__} does not")
        self._runtime = runtime
        self._conflicts = conflicts
        self._costs = costs
        self._space = runtime.semaphore(max_size)
        self._ready = runtime.semaphore(0)
        # class key -> atomic (last_writer, readers_since_last_write).
        # Grown only by the single inserting thread; read/CASed by removers.
        self._classes: Dict[Hashable, object] = {}
        # Michael–Scott FIFO of ready nodes: head points at the current
        # dummy, head's successor chain is the queue content.
        sentinel = _ReadySentinel(runtime)
        self._q_head = runtime.atomic(sentinel)
        self._q_tail = runtime.atomic(sentinel)
        self._next_seq = 0
        # Instrumentation (docs/observability.md); pure Python only — no
        # effects are added, so simulated schedules do not change.
        obs = obs if obs is not None else NULL_REGISTRY
        self._obs = obs
        self._obs_on = obs.enabled
        self._m_occupancy = obs.gauge("cos_graph_size")
        self._m_inserts = obs.counter("cos_inserts_total")
        self._m_gets = obs.counter("cos_gets_total")
        self._m_removes = obs.counter("cos_removes_total")
        self._m_restarts = obs.counter("cos_traversal_restarts_total")
        self._m_cas_retries = obs.counter("cos_cas_retries_total")
        self._m_space_wait = obs.histogram("cos_space_wait_seconds")
        self._m_ready_wait = obs.histogram("cos_ready_wait_seconds")
        self._m_insert_visits = obs.counter("cos_insert_visits_total")
        self._m_index_hits = obs.counter("cos_index_hits_total")
        self._m_pruned = obs.counter("cos_index_entries_pruned_total")

    # --------------------------------------------------- blocking layer API

    def insert(self, cmd: Command) -> EffectGen:
        """Wait for space, index-insert, publish readiness (Alg. 5 shape)."""
        obs_on = self._obs_on
        entered = self._obs.clock() if obs_on else 0.0
        yield Down(self._space)
        if obs_on:
            self._m_space_wait.observe(self._obs.clock() - entered)
        ready = yield from self._idx_insert(cmd)
        if obs_on:
            self._m_inserts.inc()
            self._m_occupancy.inc()
        if ready:
            yield Up(self._ready, ready)

    def get(self) -> EffectGen:
        """Wait for a ready node, then pop it off the ready stack."""
        obs_on = self._obs_on
        entered = self._obs.clock() if obs_on else 0.0
        yield Down(self._ready)
        if obs_on:
            self._m_ready_wait.observe(self._obs.clock() - entered)
        node = yield from self._pop_ready()
        if obs_on:
            self._m_gets.inc()
        return node

    def remove(self, handle: IndexedNode) -> EffectGen:
        """Seal, prune the index, release dependents, publish space."""
        freed = yield from self._idx_remove(handle)
        if self._obs_on:
            self._m_removes.inc()
            self._m_occupancy.dec()
        if freed:
            yield Up(self._ready, freed)
        yield Up(self._space)

    # --------------------------------------------------- index insert

    def _writer_candidates(
            self, writer: Optional[IndexedNode],
            readers: Tuple[IndexedNode, ...]) -> Tuple[IndexedNode, ...]:
        """Predecessors a *writer* of a class must wait for.

        A seam for seeded fault injection (:mod:`repro.check.mutants`);
        the correct answer is the last writer plus every reader since.
        """
        return ((writer,) if writer is not None else ()) + readers

    def _idx_insert(self, cmd: Command) -> EffectGen:
        """Insert via the class index; returns 1 if the node came out ready.

        Runs on the single scheduler thread (inserts are sequential), so
        growing ``self._classes`` and ``self._next_seq`` needs no
        synchronization; everything shared with getters/removers goes
        through atomic cells.
        """
        footprint = tuple(self._conflicts.footprint(cmd))
        node = IndexedNode(cmd, self._next_seq, self._runtime, footprint)
        self._next_seq += 1
        visit = self._costs.insert_visit
        backoff = self._costs.retry_backoff
        visits = 0
        linked = set()  # predecessor seqs, deduped across shared classes
        for class_key, writes in footprint:
            cell = self._classes.get(class_key)
            if cell is None:
                cell = self._runtime.atomic(_EMPTY_ENTRY)
                self._classes[class_key] = cell
            visits += 1
            if visit:
                yield Work(visit)
            # Publish the node in the entry first; the displaced entry
            # names the candidates to link to.  CAS loop: a concurrent
            # remover may be pruning itself out of the same entry.
            while True:
                entry = yield Load(cell)
                writer, readers = entry
                if writes:
                    new_entry = (node, ())
                else:
                    new_entry = (writer, readers + (node,))
                ok = yield Cas(cell, entry, new_entry)
                if ok:
                    break
                if self._obs_on:
                    self._m_cas_retries.inc()
                if backoff:
                    yield Work(backoff)
            if writes:
                candidates = self._writer_candidates(writer, readers)
            else:
                candidates = (writer,) if writer is not None else ()
            if self._obs_on and candidates:
                self._m_index_hits.inc()
            for pred in candidates:
                if pred.seq in linked:
                    continue
                linked.add(pred.seq)
                visits += 1
                if visit:
                    yield Work(visit)
                yield from self._link_edge(pred, node)
        if self._obs_on:
            self._m_insert_visits.inc(visits)
        # Drop the insertion guard — only now can the counter reach zero.
        freed = yield from self._adjust_pending(node, -1)
        return freed

    def _link_edge(self, pred: IndexedNode, node: IndexedNode) -> EffectGen:
        """Register ``pred -> node``, or skip it if ``pred`` sealed.

        The provisional increment happens *before* the node becomes
        visible in ``pred.dep_me``, so pred's remover can never decrement
        a count that was not already raised; the insertion guard keeps
        the compensating decrement on the sealed path from reaching zero.
        """
        edge = self._costs.edge
        backoff = self._costs.retry_backoff
        yield from self._adjust_pending(node, +1)
        while True:
            dependents = yield Load(pred.dep_me)
            if dependents is _SEALED:
                # pred's removal already claimed its dependents; it can
                # no longer block this node.
                yield from self._adjust_pending(node, -1)
                return
            ok = yield Cas(pred.dep_me, dependents, dependents + (node,))
            if ok:
                if edge:
                    yield Work(edge)
                node.deps_dbg.append(pred)
                return
            if self._obs_on:
                self._m_cas_retries.inc()
            if backoff:
                yield Work(backoff)

    # --------------------------------------------------- readiness / get

    def _adjust_pending(self, node: IndexedNode, delta: int) -> EffectGen:
        """Atomically add ``delta``; the decrement that reaches zero owns
        the ``wtg -> rdy`` transition and the ready-stack push.  Returns 1
        iff this call made ``node`` ready."""
        backoff = self._costs.retry_backoff
        while True:
            count = yield Load(node.pending)
            ok = yield Cas(node.pending, count, count + delta)
            if ok:
                break
            if self._obs_on:
                self._m_cas_retries.inc()
            if backoff:
                yield Work(backoff)
        if count + delta != 0:
            return 0
        ok = yield Cas(node.st, WAITING, READY)
        if not ok:
            # Exactly one decrement reaches zero, and only after the
            # insertion guard is gone; a failure here means the counter
            # protocol is broken.
            raise RuntimeError(f"{node!r} left wtg before its counter hit 0")
        yield from self._push_ready(node)
        if self._obs_on:
            self._obs.span(span_key(node.cmd), "ready")
        return 1

    def _push_ready(self, node: IndexedNode) -> EffectGen:
        """Michael–Scott enqueue; ABA-free because every node is enqueued
        exactly once, and dequeued nodes are never re-linked."""
        backoff = self._costs.retry_backoff
        while True:
            tail = yield Load(self._q_tail)
            nxt = yield Load(tail.qnext)
            if nxt is not None:
                # Tail lags behind; help swing it forward and retry.
                yield Cas(self._q_tail, tail, nxt)
                continue
            ok = yield Cas(tail.qnext, None, node)
            if ok:
                # Best-effort tail swing; a helper may already have done it.
                yield Cas(self._q_tail, tail, node)
                return
            if self._obs_on:
                self._m_cas_retries.inc()
            if backoff:
                yield Work(backoff)

    def _pop_ready(self) -> EffectGen:
        """Michael–Scott dequeue.  The caller holds a ``ready`` credit and
        every enqueue happens before the matching ``Up``, so the queue can
        only look empty for the duration of a concurrent dequeue race."""
        visit = self._costs.get_visit
        backoff = self._costs.retry_backoff
        while True:
            head = yield Load(self._q_head)
            nxt = yield Load(head.qnext)
            if nxt is None:
                if self._obs_on:
                    self._m_restarts.inc()
                if backoff:
                    yield Work(backoff)
                continue
            if visit:
                yield Work(visit)
            ok = yield Cas(self._q_head, head, nxt)
            if ok:
                # nxt is now the queue's dummy; it is also the dequeued
                # value, and its qnext stays linked for later dequeues.
                taken = yield Cas(nxt.st, READY, EXECUTING)
                if not taken:
                    raise RuntimeError(
                        f"dequeued {nxt!r} in state {nxt.st!r}, not rdy")
                return nxt
            if self._obs_on:
                self._m_cas_retries.inc()
            if backoff:
                yield Work(backoff)

    # --------------------------------------------------- remove

    def _idx_remove(self, node: IndexedNode) -> EffectGen:
        """Seal dependents, logically remove, prune the index, release."""
        backoff = self._costs.retry_backoff
        # 1. Seal: after this CAS no inserter can register another edge,
        #    so the snapshot is exactly the set of counters to decrement.
        while True:
            dependents = yield Load(node.dep_me)
            if dependents is _SEALED:
                raise LookupError(f"{node.cmd!r} removed twice")
            ok = yield Cas(node.dep_me, dependents, _SEALED)
            if ok:
                break
            if self._obs_on:
                self._m_cas_retries.inc()
            if backoff:
                yield Work(backoff)
        # 2. Logical removal — lifecycle parity with the lock-free graph
        #    (readiness itself rides on the counters, not on this store).
        yield Store(node.st, REMOVED)
        # 3. Prune the node out of its index entries so entries only ever
        #    reference live nodes (bounds the readers tuples).
        yield from self._prune_index(node)
        # 4. Release the dependents.
        visit = self._costs.remove_visit
        freed = 0
        for dependent in dependents:
            if visit:
                yield Work(visit)
            freed += yield from self._adjust_pending(dependent, -1)
        return freed

    def _prune_index(self, node: IndexedNode) -> EffectGen:
        backoff = self._costs.retry_backoff
        for class_key, _writes in node.footprint:
            cell = self._classes[class_key]
            while True:
                entry = yield Load(cell)
                writer, readers = entry
                if writer is node:
                    new_entry = (None, readers)
                elif node in readers:
                    new_entry = (writer,
                                 tuple(r for r in readers if r is not node))
                else:
                    break  # already displaced by a later writer
                ok = yield Cas(cell, entry, new_entry)
                if ok:
                    if self._obs_on:
                        self._m_pruned.inc()
                    break
                if self._obs_on:
                    self._m_cas_retries.inc()
                if backoff:
                    yield Work(backoff)

    # ------------------------------------------------------------ inspection

    def index_stats_unsafe(self) -> Tuple[int, int, int]:
        """(classes, live writer refs, live reader refs) from an
        unsynchronized read of the index.  Tests and debugging only."""
        classes = len(self._classes)
        writers = readers = 0
        for cell in self._classes.values():
            writer, reader_tuple = cell.value
            if writer is not None:
                writers += 1
            readers += len(reader_tuple)
        return classes, writers, readers
