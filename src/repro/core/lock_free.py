"""Lock-free DAG scheduler (paper Algorithms 5-7).

Two layers:

- A thin **blocking layer** (Alg. 5) of two counting semaphores — ``space``
  bounds the graph population, ``ready`` counts commands free to execute —
  so the lock-free layer only runs when its preconditions hold.
- A **lock-free layer** (Algs. 6-7) where nodes carry an atomic state cell
  (``wtg -> rdy -> exe -> rmd``), removal is *logical* (a single atomic store
  of ``rmd``, Alg. 7 l. 34), and physical unlinking happens lazily inside the
  next ``lfInsert`` via a helping step (``helpedRemove``, Alg. 7 l. 5-11).

Synchronization structure, as argued in the paper (§6.2.1):

- ``lfInsert`` is invoked sequentially (by the single scheduler thread), so
  *all topological modifications* (``nxt`` links, head pointer, ``dep_on`` /
  ``dep_me`` snapshots) are single-writer; concurrent ``lfGet``/``lfRemove``
  only read topology and CAS node states.
- ``testReady`` (Alg. 7 l. 1-4) checks that every dependency is logically
  removed and then CASes ``wtg -> rdy``; the CAS arbitrates between the
  insert thread and concurrent removers so each node is counted ready
  exactly once.
- ``lfGet`` walks the arrival-ordered list CASing ``rdy -> exe``; the CAS
  guarantees a command is returned at most once.

Documented divergences (see DESIGN.md):

- As with the fine-grained graph, a node can turn ready behind an in-flight
  ``lfGet`` traversal, so our ``get`` restarts from the head instead of
  walking off the end of the list.
- The paper's pseudocode adds ``depOn`` entries one by one during the insert
  traversal (Alg. 7 l. 22-23).  A concurrent ``lfRemove`` of an
  already-collected dependency can then observe a *prefix* of the dependency
  set and wrongly mark the node ready before its later conflicts are
  recorded — precisely the hazard §6.2 warns about.  We close it by keeping
  ``dep_on`` unpublished (``None``) during the traversal and publishing the
  complete set with a single atomic store right before linking the node;
  ``testReady`` treats an unpublished set as "not ready".
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.command import Command, ConflictRelation
from repro.core.cos import COS, DEFAULT_MAX_SIZE, StructureCosts
from repro.core.effects import Cas, Down, Load, Store, Up, Work
from repro.core.node import EXECUTING, READY, REMOVED, WAITING, LockFreeNode
from repro.core.runtime import EffectGen, Runtime
from repro.obs.registry import NULL_REGISTRY
from repro.obs.spans import span_key

__all__ = ["LockFreeCOS"]


class LockFreeCOS(COS):
    """COS implementation with nonblocking and lazy synchronization."""

    def __init__(
        self,
        runtime: Runtime,
        conflicts: ConflictRelation,
        max_size: int = DEFAULT_MAX_SIZE,
        costs: StructureCosts = StructureCosts.zero(),
        obs=None,
    ):
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self._runtime = runtime
        self._conflicts = conflicts
        self._costs = costs
        self._space = runtime.semaphore(max_size)   # Alg. 5 l. 2
        self._ready = runtime.semaphore(0)          # Alg. 5 l. 3
        self._head = runtime.atomic(None)           # Alg. 6 l. 11 (N)
        self._next_seq = 0
        # Instrumentation (docs/observability.md); pure Python only — no
        # effects are added, so simulated schedules do not change.
        obs = obs if obs is not None else NULL_REGISTRY
        self._obs = obs
        self._obs_on = obs.enabled
        self._m_occupancy = obs.gauge("cos_graph_size")
        self._m_inserts = obs.counter("cos_inserts_total")
        self._m_gets = obs.counter("cos_gets_total")
        self._m_removes = obs.counter("cos_removes_total")
        self._m_restarts = obs.counter("cos_traversal_restarts_total")
        self._m_cas_retries = obs.counter("cos_cas_retries_total")
        self._m_space_wait = obs.histogram("cos_space_wait_seconds")
        self._m_ready_wait = obs.histogram("cos_ready_wait_seconds")
        self._m_insert_visits = obs.counter("cos_insert_visits_total")

    # --------------------------------------------------- blocking layer API

    def insert(self, cmd: Command) -> EffectGen:
        """Alg. 5 ``insert``: wait for space, lfInsert, publish readiness."""
        obs_on = self._obs_on
        entered = self._obs.clock() if obs_on else 0.0
        yield Down(self._space)
        if obs_on:
            self._m_space_wait.observe(self._obs.clock() - entered)
        ready = yield from self._lf_insert(cmd)
        if obs_on:
            self._m_inserts.inc()
            self._m_occupancy.inc()
        if ready:
            yield Up(self._ready, ready)

    def get(self) -> EffectGen:
        """Alg. 5 ``get``: wait for a ready node, then lfGet."""
        obs_on = self._obs_on
        entered = self._obs.clock() if obs_on else 0.0
        yield Down(self._ready)
        if obs_on:
            self._m_ready_wait.observe(self._obs.clock() - entered)
        node = yield from self._lf_get()
        if obs_on:
            self._m_gets.inc()
        return node

    def remove(self, handle: LockFreeNode) -> EffectGen:
        """Alg. 5 ``remove``: lfRemove, then publish freed nodes and space."""
        ready = yield from self._lf_remove(handle)
        if self._obs_on:
            self._m_removes.inc()
            self._m_occupancy.dec()
        if ready:
            yield Up(self._ready, ready)
        yield Up(self._space)

    # --------------------------------------------------- lock-free layer

    def _test_ready(self, node: LockFreeNode) -> EffectGen:
        """Alg. 7 ``testReady``: 1 if this call made ``node`` ready.

        A ``None`` dependency set means the node's insert has not published
        its dependencies yet, so it cannot be declared ready (see
        :class:`~repro.core.node.LockFreeNode`).
        """
        deps = yield Load(node.dep_on)
        if deps is None:
            return 0
        for dep in deps:
            dep_st = yield Load(dep.st)
            if dep_st != REMOVED:
                return 0
        ok = yield Cas(node.st, WAITING, READY)
        if self._obs_on:
            if ok:
                self._obs.span(span_key(node.cmd), "ready")
            else:
                # Lost the wtg->rdy race to a concurrent remover/inserter.
                self._m_cas_retries.inc()
        return 1 if ok else 0

    def _helped_remove(self, prev: Optional[LockFreeNode],
                       node: LockFreeNode) -> EffectGen:
        """Alg. 7 ``helpedRemove``: physically unlink a logically removed
        node, clearing it from its dependents' ``dep_on`` snapshots.

        Runs only inside ``_lf_insert`` (the single topology writer).
        ``prev`` is the last non-removed node seen before ``node``, or
        ``None`` when ``node`` is the list head.
        """
        edge = self._costs.edge
        dependents = yield Load(node.dep_me)
        for dependent in dependents:
            dep_on = yield Load(dependent.dep_on)
            # An unpublished dependent (dep_on is None) needs no pruning:
            # its insert will publish the full set, and testReady skips
            # logically removed entries anyway.
            if dep_on is not None and node in dep_on:
                if edge:
                    yield Work(edge)
                pruned = tuple(d for d in dep_on if d is not node)
                yield Store(dependent.dep_on, pruned)
        nxt = yield Load(node.nxt)
        if prev is None:
            yield Store(self._head, nxt)   # Alg. 7 l. 9 (LPrmv)
        else:
            yield Store(prev.nxt, nxt)     # Alg. 7 l. 11 (LPrmv)

    def _lf_insert(self, cmd: Command) -> EffectGen:
        """Alg. 7 ``lfInsert``: traverse, help removals, collect conflicts,
        publish the node, report readiness."""
        node = LockFreeNode(cmd, self._next_seq, self._runtime)
        self._next_seq += 1
        visit = self._costs.insert_visit
        edge = self._costs.edge
        conflicts = self._conflicts.conflicts
        dep_acc: List[LockFreeNode] = []
        prev: Optional[LockFreeNode] = None
        visited = 0
        cur = yield Load(self._head)
        while cur is not None:
            visited += 1
            if visit:
                yield Work(visit)
            cur_st = yield Load(cur.st)
            if cur_st == REMOVED:
                yield from self._helped_remove(prev, cur)
                cur = yield Load(cur.nxt)
                continue
            if conflicts(cur.cmd, cmd):
                if edge:
                    yield Work(edge)
                dep_me = yield Load(cur.dep_me)
                yield Store(cur.dep_me, dep_me + (node,))
                dep_acc.append(cur)
            prev = cur
            cur = yield Load(cur.nxt)
        # Publish the complete dependency set before the node becomes
        # visible (paper §6.2 requires all edges to exist first, otherwise
        # the node could be wrongly considered ready).  Until this store,
        # dep_on is None and testReady refuses to mark the node ready.
        if self._obs_on:
            self._m_insert_visits.inc(visited)
        yield Store(node.dep_on, tuple(dep_acc))
        if prev is None:
            yield Store(self._head, node)  # Alg. 7 l. 15/25 (LPins)
        else:
            yield Store(prev.nxt, node)    # Alg. 7 l. 25 (LPins)
        ready = yield from self._test_ready(node)
        return ready

    def _lf_get(self) -> EffectGen:
        """Alg. 7 ``lfGet`` with restart-from-head (see module docstring)."""
        visit = self._costs.get_visit
        while True:
            cur = yield Load(self._head)
            while cur is not None:
                if visit:
                    yield Work(visit)
                ok = yield Cas(cur.st, READY, EXECUTING)  # LPget
                if ok:
                    return cur
                cur = yield Load(cur.nxt)
            # The ready node slipped behind the walk; restart from the head.
            if self._obs_on:
                self._m_restarts.inc()
            if self._costs.retry_backoff:
                yield Work(self._costs.retry_backoff)

    def _lf_remove(self, node: LockFreeNode) -> EffectGen:
        """Alg. 7 ``lfRemove``: logical removal + readiness propagation."""
        yield Store(node.st, REMOVED)  # LPlogicRmv
        visit = self._costs.remove_visit
        freed = 0
        dependents = yield Load(node.dep_me)
        for dependent in dependents:
            if visit:
                yield Work(visit)
            freed += yield from self._test_ready(dependent)
        return freed

    # ------------------------------------------------------------ inspection

    def chain_stats_unsafe(self):
        """(live, logically_removed) node counts from an unsynchronized
        walk of the arrival list.  Tests and debugging only.

        Bounds the garbage lazy removal can accumulate: logically removed
        nodes persist only until the next insert traversal unlinks them,
        so the removed count can never exceed the population the last
        insert observed.
        """
        live = removed = 0
        node = self._head.value
        while node is not None:
            if node.st.value == REMOVED:
                removed += 1
            else:
                live += 1
            node = node.nxt.value
        return live, removed
