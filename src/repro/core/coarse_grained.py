"""Coarse-grained DAG scheduler (paper Algorithm 2, CBASE-style).

The whole dependency graph is one critical section: a single monitor (one
mutex plus the ``nFull`` and ``hasReady`` condition variables) serializes
``insert``, ``get`` and ``remove``.  This is the baseline the paper shows to
bottleneck the replica under high delivery rates.

Faithful points:

- ``insert`` blocks while the graph holds ``max_size`` nodes (Alg. 2 l. 12),
  checks every resident node for conflicts (l. 14-16) and signals
  ``hasReady`` when the new node arrives free of dependencies (l. 19).
- ``get`` scans for the *oldest* waiting node without incoming edges
  (l. 21-26) and waits on ``hasReady`` otherwise.
- ``remove`` deletes the node's outgoing edges, signalling ``hasReady`` for
  every node that becomes free (l. 30-33), then frees a slot (l. 35).

Implementation notes: nodes live in an insertion-ordered dict so the oldest-
first scan of ``get`` follows delivery order and removal is O(1); outgoing
edges are materialized (``deps_out``) so ``remove`` touches only actual
dependents, matching the paper's observation that removing an independent
command is cheap (§7.3.1).
"""

from __future__ import annotations

from typing import Dict

from repro.core.command import Command, ConflictRelation
from repro.core.cos import COS, DEFAULT_MAX_SIZE, StructureCosts
from repro.core.effects import Acquire, Release, Signal, Wait, Work
from repro.core.node import EXECUTING, WAITING, CoarseNode
from repro.core.runtime import EffectGen, Runtime
from repro.obs.registry import NULL_REGISTRY
from repro.obs.spans import span_key

__all__ = ["CoarseGrainedCOS"]


class CoarseGrainedCOS(COS):
    """COS implementation with a single lock over the whole graph."""

    def __init__(
        self,
        runtime: Runtime,
        conflicts: ConflictRelation,
        max_size: int = DEFAULT_MAX_SIZE,
        costs: StructureCosts = StructureCosts.zero(),
        obs=None,
    ):
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self._conflicts = conflicts
        self._max_size = max_size
        self._costs = costs
        self._mutex = runtime.mutex()
        self._not_full = runtime.condition(self._mutex)
        self._has_ready = runtime.condition(self._mutex)
        self._nodes: Dict[int, CoarseNode] = {}  # seq -> node, delivery order
        self._next_seq = 0
        # Instrumentation (docs/observability.md).  Pure Python bookkeeping
        # only — it must never add or reorder yielded effects, so simulated
        # schedules are identical with observability on or off.
        obs = obs if obs is not None else NULL_REGISTRY
        self._obs = obs
        self._obs_on = obs.enabled
        self._m_occupancy = obs.gauge("cos_graph_size")
        self._m_inserts = obs.counter("cos_inserts_total")
        self._m_gets = obs.counter("cos_gets_total")
        self._m_removes = obs.counter("cos_removes_total")
        self._m_restarts = obs.counter("cos_traversal_restarts_total")
        self._m_space_wait = obs.histogram("cos_space_wait_seconds")
        self._m_ready_wait = obs.histogram("cos_ready_wait_seconds")
        self._m_insert_visits = obs.counter("cos_insert_visits_total")

    # ------------------------------------------------------------------ API

    def insert(self, cmd: Command) -> EffectGen:
        node = CoarseNode(cmd, self._next_seq)
        self._next_seq += 1
        obs_on = self._obs_on
        entered = self._obs.clock() if obs_on else 0.0
        yield Acquire(self._mutex)
        while len(self._nodes) >= self._max_size:
            yield Wait(self._not_full)
        if obs_on:
            # Time from invocation until lock + capacity were both held.
            self._m_space_wait.observe(self._obs.clock() - entered)
        visit = self._costs.insert_visit
        edge = self._costs.edge
        conflicts = self._conflicts.conflicts
        visited = 0
        for other in self._nodes.values():
            visited += 1
            if visit:
                yield Work(visit)
            if conflicts(other.cmd, cmd):
                if edge:
                    yield Work(edge)
                other.deps_out[node] = None
                node.deps_in.add(other)
        self._nodes[node.seq] = node
        if obs_on:
            self._m_inserts.inc()
            self._m_insert_visits.inc(visited)
            self._m_occupancy.set(len(self._nodes))
        if not node.deps_in:
            if obs_on:
                self._obs.span(span_key(cmd), "ready")
            yield Signal(self._has_ready)
        yield Release(self._mutex)

    def get(self) -> EffectGen:
        obs_on = self._obs_on
        entered = self._obs.clock() if obs_on else 0.0
        yield Acquire(self._mutex)
        visit = self._costs.get_visit
        while True:
            found = None
            for node in self._nodes.values():  # oldest first
                if visit:
                    yield Work(visit)
                if node.status == WAITING and not node.deps_in:
                    found = node
                    break
            if found is not None:
                found.status = EXECUTING
                if obs_on:
                    self._m_gets.inc()
                    self._m_ready_wait.observe(self._obs.clock() - entered)
                yield Release(self._mutex)
                return found
            if obs_on:
                self._m_restarts.inc()  # scan found nothing: wait and rescan
            yield Wait(self._has_ready)

    def remove(self, handle: CoarseNode) -> EffectGen:
        obs_on = self._obs_on
        yield Acquire(self._mutex)
        edge = self._costs.edge
        for dependent in handle.deps_out:
            if edge:
                yield Work(edge)
            dependent.deps_in.discard(handle)
            if not dependent.deps_in and dependent.status == WAITING:
                if obs_on:
                    self._obs.span(span_key(dependent.cmd), "ready")
                yield Signal(self._has_ready)
        handle.deps_out.clear()
        del self._nodes[handle.seq]
        if obs_on:
            self._m_removes.inc()
            self._m_occupancy.set(len(self._nodes))
        yield Signal(self._not_full)
        yield Release(self._mutex)

    # ---------------------------------------------------------- inspection

    def size_unsafe(self) -> int:
        """Current node count, read without synchronization (tests only)."""
        return len(self._nodes)
