"""Core package: the paper's contribution.

Contains the Conflict-Ordered Set (COS) abstract data type and its three
implementations — coarse-grained (Alg. 2), fine-grained lock coupling
(Algs. 3-4) and lock-free (Algs. 5-7) — plus the FIFO COS used by the
sequential-SMR baseline and the threaded runtime that executes them on OS
threads.
"""

from repro.core.command import (
    AlwaysConflicts,
    Command,
    ConflictRelation,
    KeyedConflicts,
    MultiKeyedConflicts,
    NeverConflicts,
    PredicateConflicts,
    ReadWriteConflicts,
    stable_hash,
)
from repro.core.class_based import ClassBasedCOS, ClassConflicts, read_write_classes
from repro.core.cos import COS, DEFAULT_MAX_SIZE, StructureCosts
from repro.core.coarse_grained import CoarseGrainedCOS
from repro.core.early import (
    DEFAULT_WORKERS as DEFAULT_EARLY_WORKERS,
    EarlyCOS,
    EarlyConfig,
    EarlySchedule,
)
from repro.core.history import (
    HistoryRecorder,
    HistoryViolation,
    RecordingCOS,
    check_history,
)
from repro.core.fine_grained import FineGrainedCOS
from repro.core.indexed import IndexedCOS
from repro.core.lock_free import LockFreeCOS
from repro.core.sequential import SequentialCOS
from repro.core.threaded import ThreadedCOS, ThreadedRuntime

__all__ = [
    "Command",
    "ConflictRelation",
    "ReadWriteConflicts",
    "KeyedConflicts",
    "MultiKeyedConflicts",
    "NeverConflicts",
    "AlwaysConflicts",
    "PredicateConflicts",
    "stable_hash",
    "COS",
    "StructureCosts",
    "DEFAULT_MAX_SIZE",
    "CoarseGrainedCOS",
    "FineGrainedCOS",
    "ClassBasedCOS",
    "ClassConflicts",
    "read_write_classes",
    "EarlyCOS",
    "EarlyConfig",
    "EarlySchedule",
    "HistoryRecorder",
    "HistoryViolation",
    "RecordingCOS",
    "check_history",
    "IndexedCOS",
    "LockFreeCOS",
    "SequentialCOS",
    "ThreadedCOS",
    "ThreadedRuntime",
    "make_cos",
    "COS_ALGORITHMS",
]

#: Names accepted by :func:`make_cos`, in the order the paper presents them
#: (plus the class-based extension from the related-work line, the indexed
#: variant of the lock-free graph and the early/static schedulers,
#: docs/scheduling.md).
COS_ALGORITHMS = ("coarse-grained", "fine-grained", "lock-free", "indexed",
                  "sequential", "class-based", "early", "early-batched")

#: Algorithms that compile the conflict relation into per-class state and
#: therefore require ``supports_footprint=True``.
FOOTPRINT_ALGORITHMS = ("indexed", "early", "early-batched")


def make_cos(name, runtime, conflicts, max_size=DEFAULT_MAX_SIZE,
             costs=StructureCosts.zero(), classes_of=None, obs=None,
             workers=None, early_config=None):
    """Construct a COS implementation by its paper name.

    Args:
        name: One of :data:`COS_ALGORITHMS`.
        runtime: The runtime whose primitives the structure should use.
        conflicts: The application conflict relation (ignored by
            ``"sequential"``, which orders everything, and by
            ``"class-based"``, which derives conflicts from classes).
        max_size: Graph capacity (paper default: 150).
        costs: Structure cost model for simulation runs.
        classes_of: For ``"class-based"`` only — maps a command to its
            conflict classes; defaults to the single-class readers/writers
            model (:func:`read_write_classes`).
        obs: Optional :class:`repro.obs.MetricsRegistry` the graph
            structures and the early schedulers record into (occupancy,
            blocked-time, restarts, CAS retries, lane depths — see
            docs/observability.md).  ``None`` disables.
        workers: For ``"early"``/``"early-batched"`` only — number of
            execution lanes to compile the class map for (defaults to
            :data:`repro.core.early.DEFAULT_WORKERS`).
        early_config: For ``"early"``/``"early-batched"`` only — a full
            :class:`EarlyConfig`, overriding ``workers``.
    """
    if name in FOOTPRINT_ALGORITHMS and not getattr(
            conflicts, "supports_footprint", False):
        alternatives = tuple(a for a in COS_ALGORITHMS
                             if a not in FOOTPRINT_ALGORITHMS)
        raise ValueError(
            f"the {name!r} scheduler requires a conflict relation that "
            f"decomposes into classes (supports_footprint=True), but "
            f"{type(conflicts).__name__} does not; either give the "
            f"relation a footprint (see ConflictRelation.footprint) or "
            f"pick a pairwise scheduler: {alternatives}")
    if name == "coarse-grained":
        return CoarseGrainedCOS(runtime, conflicts, max_size, costs, obs=obs)
    if name == "fine-grained":
        return FineGrainedCOS(runtime, conflicts, max_size, costs, obs=obs)
    if name == "lock-free":
        return LockFreeCOS(runtime, conflicts, max_size, costs, obs=obs)
    if name == "indexed":
        return IndexedCOS(runtime, conflicts, max_size, costs, obs=obs)
    if name == "sequential":
        return SequentialCOS(runtime, max_size, costs)
    if name == "class-based":
        return ClassBasedCOS(runtime, classes_of or read_write_classes(),
                             max_size, costs)
    if name in ("early", "early-batched"):
        config = early_config or EarlyConfig(
            workers=workers or DEFAULT_EARLY_WORKERS,
            batched=(name == "early-batched"))
        return EarlyCOS(runtime, conflicts, max_size, costs,
                        config=config, obs=obs)
    raise ValueError(f"unknown COS algorithm {name!r}; expected one of {COS_ALGORITHMS}")
