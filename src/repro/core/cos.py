"""The Conflict-Ordered Set (COS) abstract data type (paper §3.3).

A COS keeps track of the order among conflicting commands.  Its sequential
specification:

- ``insert(c)`` inserts command ``c``; inserts happen in atomic-broadcast
  delivery order (they are invoked sequentially by the scheduler thread).
- ``get()`` returns a command ``c`` iff ``c`` is in the structure, no previous
  ``get`` returned it, and no conflicting command inserted before ``c`` is
  still in the structure.
- ``remove(c)`` removes ``c`` after it has executed, potentially enabling the
  commands that depend on it.

Implementations in this package are written as *effect generators* (see
:mod:`repro.core.effects`): each public operation returns a generator that a
runtime drives to completion.  ``get`` returns a node *handle*; the handle's
command is obtained with :meth:`COS.command_of` and must be passed back to
``remove`` unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.core.command import Command
from repro.core.runtime import EffectGen

__all__ = ["COS", "StructureCosts", "DEFAULT_MAX_SIZE"]

#: Paper §7.2: "we configured the maximum size of the dependency graph with
#: 150 entries for all approaches".
DEFAULT_MAX_SIZE = 150


@dataclass(frozen=True)
class StructureCosts:
    """Computation charged by the algorithms themselves (simulation only).

    The runtime already charges per-primitive synchronization costs; these
    model the pure-CPU part of graph maintenance:

    Attributes:
        insert_visit: Cost of visiting one node during ``insert`` (conflict
            check against the incoming command).
        get_visit: Cost of visiting one node during ``get`` (readiness check).
        remove_visit: Cost of visiting one node or edge during ``remove``.
        edge: Cost of materializing or deleting one dependency edge
            (set insert/remove plus allocation).
        retry_backoff: Cost charged when a traversal must restart from the
            head (lock-free / fine-grained ``get`` position races).
    """

    insert_visit: float = 0.0
    get_visit: float = 0.0
    remove_visit: float = 0.0
    edge: float = 0.0
    retry_backoff: float = 0.0

    @staticmethod
    def zero() -> "StructureCosts":
        """Costs for threaded execution, where real CPU time is the cost."""
        return StructureCosts()


class COS(ABC):
    """Abstract Conflict-Ordered Set over effect generators."""

    @abstractmethod
    def insert(self, cmd: Command) -> EffectGen:
        """Insert ``cmd``.  Must be invoked in delivery order, sequentially."""

    @abstractmethod
    def get(self) -> EffectGen:
        """Return a handle to a command with no pending conflicting
        predecessor, blocking until one exists.  Never returns the same
        command twice."""

    @abstractmethod
    def remove(self, handle: Any) -> EffectGen:
        """Remove an executed command, given the handle ``get`` returned."""

    @staticmethod
    def command_of(handle: Any) -> Command:
        """Extract the command from a handle returned by ``get``."""
        return handle.cmd
