"""Execution-history recording and COS specification checking.

Verification tooling: a :class:`HistoryRecorder` timestamps the lifecycle of
every command as it flows through a COS (insert, get, remove), and
:func:`check_history` validates the recorded history against the COS
sequential specification (paper §3.3):

- a command is returned by ``get`` at most once, and only after its insert;
- ``remove`` follows the command's own ``get``;
- for commands ``a`` inserted before ``b`` with ``(a, b)`` conflicting,
  ``b``'s get happens only after ``a``'s remove — conflicting commands never
  overlap and execute in delivery order.

The recorder is thread-safe and cheap enough to wrap stress tests; the
checker raises :class:`HistoryViolation` with a precise description of the
first violated clause.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core.command import Command, ConflictRelation
from repro.errors import ReproError

__all__ = [
    "HistoryEvent",
    "HistoryRecorder",
    "HistoryViolation",
    "check_history",
    "RecordingCOS",
]

INSERT = "insert"
GET = "get"
REMOVE = "remove"


class HistoryViolation(ReproError):
    """The recorded history violates the COS specification."""


@dataclass(frozen=True)
class HistoryEvent:
    """One timestamped lifecycle event of a command."""

    kind: str       # insert | get | remove
    uid: int        # command uid
    seq: int        # global event sequence number (total order)


class HistoryRecorder:
    """Thread-safe, totally ordered event log."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[HistoryEvent] = []
        self._counter = itertools.count()

    def record(self, kind: str, command: Command) -> None:
        with self._lock:
            self._events.append(
                HistoryEvent(kind, command.uid, next(self._counter)))

    @property
    def events(self) -> List[HistoryEvent]:
        with self._lock:
            return list(self._events)


class RecordingCOS:
    """Wraps a threaded COS facade, recording every operation.

    Drop-in replacement for :class:`~repro.core.threaded.ThreadedCOS` in
    tests.  Recording points are chosen so that the recorded order can only
    be *stricter* than the real one — no false violations:

    - ``insert`` records *before* the insert starts (inserts are sequential,
      so record order is still delivery order, and any get of the command
      necessarily records later);
    - ``get`` records after the handle is obtained;
    - ``remove`` records *before* the removal starts, so a conflicting get
      recorded later truly happened after the command finished executing.
    """

    def __init__(self, inner: Any, recorder: Optional[HistoryRecorder] = None):
        self._inner = inner
        self.recorder = recorder or HistoryRecorder()

    def insert(self, cmd: Command) -> None:
        self.recorder.record(INSERT, cmd)
        self._inner.insert(cmd)

    def get(self) -> Any:
        handle = self._inner.get()
        self.recorder.record(GET, self._inner.command_of(handle))
        return handle

    def remove(self, handle: Any) -> None:
        self.recorder.record(REMOVE, self._inner.command_of(handle))
        self._inner.remove(handle)

    def command_of(self, handle: Any) -> Command:
        return self._inner.command_of(handle)


def check_history(
    events: Sequence[HistoryEvent],
    commands: Sequence[Command],
    conflicts: ConflictRelation,
) -> None:
    """Validate a history against the COS specification.

    Args:
        events: The recorded, totally ordered events.
        commands: Commands in delivery order (defines the conflict order).
        conflicts: The conflict relation in force during the run.

    Raises:
        HistoryViolation: on the first violated specification clause.
    """
    by_uid: Dict[int, Dict[str, int]] = {}
    for event in events:
        slots = by_uid.setdefault(event.uid, {})
        if event.kind in slots:
            raise HistoryViolation(
                f"command {event.uid} has duplicate {event.kind!r} events")
        slots[event.kind] = event.seq

    known = {command.uid for command in commands}
    for uid, slots in by_uid.items():
        if uid not in known:
            raise HistoryViolation(f"unknown command uid {uid} in history")

    for command in commands:
        slots = by_uid.get(command.uid)
        if slots is None:
            raise HistoryViolation(f"{command} never appears in the history")
        if INSERT not in slots:
            raise HistoryViolation(f"{command} was never inserted")
        if GET in slots and slots[GET] < slots[INSERT]:
            raise HistoryViolation(f"{command} was got before its insert")
        if REMOVE in slots:
            if GET not in slots:
                raise HistoryViolation(f"{command} removed without a get")
            if slots[REMOVE] < slots[GET]:
                raise HistoryViolation(f"{command} removed before its get")

    # Conflict ordering: for i < j conflicting, remove(i) < get(j).
    for i, first in enumerate(commands):
        first_slots = by_uid[first.uid]
        for second in commands[i + 1:]:
            if not conflicts.conflicts(first, second):
                continue
            second_slots = by_uid[second.uid]
            if GET not in second_slots:
                continue  # second never executed: nothing to order
            if REMOVE not in first_slots:
                raise HistoryViolation(
                    f"{second} executed while conflicting predecessor "
                    f"{first} was never removed")
            if first_slots[REMOVE] > second_slots[GET]:
                raise HistoryViolation(
                    f"conflicting {first} and {second} overlapped: "
                    f"remove@{first_slots[REMOVE]} > get@{second_slots[GET]}")
