"""Early/static scheduling: classes compiled to worker sets, O(1) enqueue.

Every COS variant so far — even the indexed graph with its O(|footprint|)
insert — decides *at delivery time* which live commands a new command must
wait for.  The early-scheduling line of related work (Alchieri et al.,
"Early Scheduling in Parallel State Machine Replication") moves that
decision to *configuration time*: the application's conflict classes are
mapped to **worker sets** once, before the first command is delivered, so
delivery degenerates to appending the command to the lanes of its classes
— no graph, no conflict test, no per-command allocation of edges.

The compile step (:class:`EarlySchedule`) consumes the same
``footprint``/``supports_footprint`` API the indexed COS uses
(:meth:`repro.core.command.ConflictRelation.footprint`) and assigns every
class one of three synchronization modes:

- **free** — commands with an *empty* footprint conflict with nothing and
  bypass the lanes entirely (ready at insert);
- **exclusive worker** — a class whose worker set is a single lane; all
  its commands serialize through that lane's FIFO;
- **worker-set barrier** — a class spread over ``k > 1`` lanes: *reads*
  of the class go round-robin to one lane each (recovering read
  parallelism), while *writes* enqueue in **every** lane of the set and
  execute only when they reach all those lane heads simultaneously — the
  classic barrier rendezvous.  A multi-class command takes the union of
  its classes' lanes, so cross-class writes barrier across worker sets.

The spread ``k`` is derived from the relation's
:meth:`~repro.core.command.ConflictRelation.class_universe`: a relation
with ``u`` global classes gets ``k = max(1, workers // u)`` lanes per
class (the readers/writers relation, ``u = 1``, spreads its reads over
*all* workers); relations with unbounded classes (per-key) default to
exclusive lanes, the classic early-scheduling configuration.

Skew is early scheduling's Achilles heel: a static class→lane map pins a
hot class to one lane while others idle.  The **batched-index** variant
(``EarlyConfig(batched=True)``, exposed as the ``early-batched``
algorithm) follows the index-based scheduling refinement: a class is
homed on the least-loaded lane when first seen, stays pinned while it has
live commands (re-homing a live class would break conflict ordering), and
idle assignments are retired every ``batch_size`` removals so returning
classes re-home to wherever load is lowest.

Correctness argument (checked by tests/test_scheduler_conformance.py,
the three-way differential harness in tests/test_indexed_differential.py,
and repro.check): conflicting commands share a class; the later one
enqueues — in the single delivery critical section, hence in delivery
order — behind the earlier one in at least one common lane (a writer
covers the class's whole worker set; a reader's one lane is inside it),
and lanes are FIFO, so conflicting commands execute in delivery order.
Early scheduling is *conservative*: commands of different classes that
happen to share a lane are ordered even though independent, so its ready
set is always a subset of the spec model's — never a superset.

Deadlock-freedom: all of a command's lane appends happen in one critical
section, so lane orders are mutually consistent (the earliest live
command is at the head of every lane it belongs to, hence ready).

Like every COS here, the algorithm is an effect generator: it runs
unchanged on OS threads, the deterministic simulator, and the
:mod:`repro.check` schedule-space explorer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Hashable, List, Optional, Tuple

from repro.core.command import Command, ConflictRelation, stable_hash
from repro.core.cos import COS, DEFAULT_MAX_SIZE, StructureCosts
from repro.core.effects import Acquire, Down, Release, Up, Work
from repro.core.runtime import EffectGen, Runtime
from repro.obs.registry import NULL_REGISTRY
from repro.obs.spans import span_key

__all__ = ["EarlyConfig", "EarlySchedule", "EarlyCOS"]

#: Lanes per scheduler when the caller does not say (tests, REPL use).
DEFAULT_WORKERS = 4


@dataclass(frozen=True)
class EarlyConfig:
    """Configuration-time parameters of the early scheduler.

    Attributes:
        workers: Number of lanes (one per execution worker).
        batched: Use the batched-index class→lane assignment (least-loaded
            homing with periodic retirement of idle classes) instead of
            the static ``stable_hash`` map.
        batch_size: Removals between retirement sweeps of idle class
            assignments (batched mode only).
        spread: Lanes per class worker set; ``None`` derives it from the
            relation's :meth:`~repro.core.command.ConflictRelation.
            class_universe` (``max(1, workers // universe)``, or 1 when
            the universe is unbounded).
    """

    workers: int = DEFAULT_WORKERS
    batched: bool = False
    batch_size: int = 64
    spread: Optional[int] = None


class EarlySchedule:
    """The compiled class→worker-set map (the configuration-time step).

    Pure bookkeeping — no effects, no synchronization of its own; the COS
    calls it only inside the delivery critical section.
    """

    def __init__(self, conflicts: ConflictRelation, config: EarlyConfig):
        if config.workers < 1:
            raise ValueError(f"workers must be >= 1, got {config.workers}")
        self._workers = config.workers
        self._batched = config.batched
        self._batch_size = max(1, config.batch_size)
        self.universe = conflicts.class_universe()
        if config.spread is not None:
            if config.spread < 1:
                raise ValueError(f"spread must be >= 1, got {config.spread}")
            self.spread = min(config.spread, config.workers)
        elif self.universe:
            self.spread = max(1, config.workers // self.universe)
        else:
            # Unbounded (per-key) classes, or no classes at all: exclusive
            # lanes — the classic early-scheduling configuration.
            self.spread = 1
        #: Batched-index state: class -> home lane, pinned while live.
        self._assign: Dict[Hashable, int] = {}
        self._class_live: Dict[Hashable, int] = {}
        self._lane_load: List[int] = [0] * self._workers
        self._removals = 0
        #: Reader round-robin cursor per class (spread > 1 only).
        self._rr: Dict[Hashable, int] = {}
        #: Idle class assignments retired so far (batched mode); each one
        #: re-homes to the least-loaded lane on next sight.
        self.rebalances = 0

    @property
    def policy(self) -> str:
        return "batched-index" if self._batched else "static"

    def _home(self, class_key: Hashable) -> int:
        if not self._batched:
            if self.universe:
                # Tile the known classes into disjoint (when possible)
                # blocks of ``spread`` lanes each.
                return (stable_hash(class_key) % self.universe
                        ) * self.spread % self._workers
            return stable_hash(class_key) % self._workers
        home = self._assign.get(class_key)
        if home is None:
            load = self._lane_load
            home = min(range(self._workers), key=lambda i: (load[i], i))
            self._assign[class_key] = home
        return home

    def worker_set(self, class_key: Hashable) -> Tuple[int, ...]:
        """The lanes of ``class_key``, a contiguous block modulo workers."""
        home = self._home(class_key)
        return tuple((home + i) % self._workers for i in range(self.spread))

    def mode_of(self, class_key: Hashable) -> str:
        """``"exclusive"`` or ``"barrier"`` (write-mode of the class)."""
        return "exclusive" if self.spread == 1 else "barrier"

    def assign(self, footprint) -> Tuple[Tuple[int, ...], bool]:
        """Lanes for one command: ``(sorted lane ids, is_barrier)``.

        Writers take their class's whole worker set; readers take one
        round-robin lane inside it.  An empty footprint yields no lanes
        (the *free* mode).  Mutates the round-robin cursors and, in
        batched mode, the live/load books — call once per insert, inside
        the delivery critical section.
        """
        lanes = set()
        for class_key, writes in footprint:
            ws = self.worker_set(class_key)
            if self._batched:
                self._class_live[class_key] = (
                    self._class_live.get(class_key, 0) + 1)
                self._lane_load[ws[0]] += 1
            if writes or len(ws) == 1:
                lanes.update(ws)
            else:
                cursor = self._rr.get(class_key, 0)
                self._rr[class_key] = cursor + 1
                lanes.add(ws[cursor % len(ws)])
        ordered = tuple(sorted(lanes))
        return ordered, len(ordered) > 1

    def retire(self, footprint) -> None:
        """Account a removal; in batched mode, periodically retire idle
        class assignments so returning classes re-home by load."""
        if not self._batched:
            return
        for class_key, _writes in footprint:
            live = self._class_live[class_key] - 1
            self._class_live[class_key] = live
            self._lane_load[self._assign[class_key]] -= 1
        self._removals += 1
        if self._removals % self._batch_size == 0:
            idle = [key for key, live in self._class_live.items() if live == 0]
            for key in idle:
                del self._assign[key]
                del self._class_live[key]
                self._rr.pop(key, None)
            self.rebalances += len(idle)

    def describe(self) -> Dict[str, object]:
        """Compile summary (docs, tests, ``repro.obs`` dashboards)."""
        return {
            "workers": self._workers,
            "spread": self.spread,
            "class_universe": self.universe,
            "policy": self.policy,
            "write_mode": self.mode_of(None),
        }


class EarlyNode:
    """One delivered command sitting in its lanes."""

    __slots__ = ("cmd", "footprint", "lanes", "pending", "barrier",
                 "taken", "removed", "enqueued_at")

    def __init__(self, cmd: Command, footprint, lanes: Tuple[int, ...],
                 barrier: bool):
        self.cmd = cmd
        self.footprint = footprint
        self.lanes = lanes
        #: Lanes where this node is not yet at the head.
        self.pending = 0
        self.barrier = barrier
        self.taken = False
        self.removed = False
        self.enqueued_at = 0.0

    def __repr__(self) -> str:
        return f"EarlyNode({self.cmd!r}, lanes={self.lanes})"


class EarlyCOS(COS):
    """COS whose scheduling was compiled at configuration time.

    Delivery is O(|lanes|) deque appends under one short mutex — no
    conflict tests, no shared graph, no edges.  The price is
    conservatism: independent commands sharing a lane serialize (the
    ready set is a subset of the DAG schedulers'), and a skewed class
    distribution can pin all load on one lane — see
    ``benchmarks/bench_early_scheduling.py`` for both sides of the trade.
    """

    def __init__(
        self,
        runtime: Runtime,
        conflicts: ConflictRelation,
        max_size: int = DEFAULT_MAX_SIZE,
        costs: StructureCosts = StructureCosts.zero(),
        config: Optional[EarlyConfig] = None,
        obs=None,
    ):
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        if not getattr(conflicts, "supports_footprint", False):
            raise ValueError(
                f"EarlyCOS requires a conflict relation that decomposes "
                f"into classes (supports_footprint=True); "
                f"{type(conflicts).__name__} does not")
        self._runtime = runtime
        self._conflicts = conflicts
        self._costs = costs
        self._config = config or EarlyConfig()
        self._plan = EarlySchedule(conflicts, self._config)
        self._mutex = runtime.mutex()
        self._space = runtime.semaphore(max_size)
        self._ready = runtime.semaphore(0)
        self._lanes: List[Deque[EarlyNode]] = [
            deque() for _ in range(self._config.workers)]
        self._ready_queue: Deque[EarlyNode] = deque()
        # Instrumentation (docs/observability.md); pure Python only — no
        # effects are added, so simulated schedules do not change.
        obs = obs if obs is not None else NULL_REGISTRY
        self._obs = obs
        self._obs_on = obs.enabled
        self._m_occupancy = obs.gauge("cos_graph_size")
        self._m_inserts = obs.counter("cos_inserts_total")
        self._m_gets = obs.counter("cos_gets_total")
        self._m_removes = obs.counter("cos_removes_total")
        self._m_space_wait = obs.histogram("cos_space_wait_seconds")
        self._m_ready_wait = obs.histogram("cos_ready_wait_seconds")
        self._m_insert_visits = obs.counter("cos_insert_visits_total")
        self._m_enqueue = obs.histogram("early_enqueue_seconds")
        self._m_barrier_cmds = obs.counter("early_barrier_commands_total")
        self._m_free_cmds = obs.counter("early_free_commands_total")
        self._m_barrier_wait = obs.histogram("early_barrier_wait_seconds")
        self._m_rebalances = obs.counter("early_rebalances_total")
        self._m_lane_depth = [
            obs.gauge("early_lane_depth", lane=i)
            for i in range(self._config.workers)]
        self._rebalances_seen = 0

    # ------------------------------------------------------------------ API

    def insert(self, cmd: Command) -> EffectGen:
        """Wait for space, enqueue into the compiled lanes, publish."""
        obs_on = self._obs_on
        entered = self._obs.clock() if obs_on else 0.0
        yield Down(self._space)
        started = self._obs.clock() if obs_on else 0.0
        freed = yield from self._early_insert(cmd)
        if obs_on:
            self._m_space_wait.observe(started - entered)
            self._m_enqueue.observe(self._obs.clock() - started)
            self._m_inserts.inc()
            self._m_occupancy.inc()
        if freed:
            yield Up(self._ready, freed)

    def get(self) -> EffectGen:
        """Wait for a ready node, then pop it off the ready FIFO."""
        obs_on = self._obs_on
        entered = self._obs.clock() if obs_on else 0.0
        yield Down(self._ready)
        if obs_on:
            self._m_ready_wait.observe(self._obs.clock() - entered)
        if self._costs.get_visit:
            yield Work(self._costs.get_visit)
        yield Acquire(self._mutex)
        node = self._ready_queue.popleft()
        node.taken = True
        yield Release(self._mutex)
        if obs_on:
            self._m_gets.inc()
        return node

    def remove(self, handle: EarlyNode) -> EffectGen:
        """Pop the node off its lane heads, promote successors, publish."""
        freed = yield from self._early_remove(handle)
        if self._obs_on:
            self._m_removes.inc()
            self._m_occupancy.dec()
        if freed:
            yield Up(self._ready, freed)
        yield Up(self._space)

    # ------------------------------------------------------------ internals

    def _barrier_lanes(self, lanes: Tuple[int, ...]) -> Tuple[int, ...]:
        """Lanes a multi-lane (worker-set barrier) command enqueues into.

        A seam for seeded fault injection (:mod:`repro.check.mutants`);
        the correct answer is all of them — skipping any lane lets the
        command run concurrently with conflicting commands in it.
        """
        return lanes

    def _early_insert(self, cmd: Command) -> EffectGen:
        """Enqueue ``cmd``; returns 1 if it came out ready.

        The whole decision runs in one critical section, so lane orders
        are mutually consistent and match delivery order.
        """
        footprint = tuple(self._conflicts.footprint(cmd))
        visit = self._costs.insert_visit
        obs_on = self._obs_on
        yield Acquire(self._mutex)
        lanes, barrier = self._plan.assign(footprint)
        if barrier:
            lanes = self._barrier_lanes(lanes)
        node = EarlyNode(cmd, footprint, lanes, barrier)
        if obs_on:
            node.enqueued_at = self._obs.clock()
        for lane_id in lanes:
            if visit:
                yield Work(visit)
            queue = self._lanes[lane_id]
            if queue:
                node.pending += 1  # someone ahead of us in this lane
            queue.append(node)
        is_ready = node.pending == 0
        if is_ready:
            self._ready_queue.append(node)
        if obs_on:
            self._m_insert_visits.inc(max(1, len(lanes)))
            if barrier:
                self._m_barrier_cmds.inc()
            if not lanes:
                self._m_free_cmds.inc()
            for lane_id in lanes:
                self._m_lane_depth[lane_id].set(len(self._lanes[lane_id]))
            if is_ready:
                self._note_ready(node)
        yield Release(self._mutex)
        return 1 if is_ready else 0

    def _early_remove(self, node: EarlyNode) -> EffectGen:
        """Dequeue ``node`` from its lane heads; returns #promoted."""
        visit = self._costs.remove_visit
        obs_on = self._obs_on
        freed = 0
        yield Acquire(self._mutex)
        if node.removed:
            yield Release(self._mutex)
            raise LookupError(f"{node.cmd!r} removed twice")
        if node.pending:
            yield Release(self._mutex)
            raise LookupError(f"{node.cmd!r} removed before it was ready")
        if not node.taken:
            # Differential drivers remove straight from the ready FIFO
            # without a get(); drop the stale entry so it cannot be
            # handed out later.
            self._ready_queue.remove(node)
        for lane_id in node.lanes:
            if visit:
                yield Work(visit)
            queue = self._lanes[lane_id]
            if not queue or queue[0] is not node:
                yield Release(self._mutex)
                raise LookupError(
                    f"{node.cmd!r} is not at the head of lane {lane_id}")
            queue.popleft()
            if queue:
                successor = queue[0]
                successor.pending -= 1
                if successor.pending == 0:
                    self._ready_queue.append(successor)
                    freed += 1
                    if obs_on:
                        self._note_ready(successor)
        node.removed = True
        self._plan.retire(node.footprint)
        if obs_on:
            for lane_id in node.lanes:
                self._m_lane_depth[lane_id].set(len(self._lanes[lane_id]))
            if self._plan.rebalances != self._rebalances_seen:
                self._m_rebalances.inc(
                    self._plan.rebalances - self._rebalances_seen)
                self._rebalances_seen = self._plan.rebalances
        yield Release(self._mutex)
        return freed

    def _note_ready(self, node: EarlyNode) -> None:
        self._obs.span(span_key(node.cmd), "ready")
        if node.barrier:
            self._m_barrier_wait.observe(
                self._obs.clock() - node.enqueued_at)

    # ------------------------------------------------------------ inspection

    def schedule(self) -> EarlySchedule:
        """The compiled plan (configuration-time artifact)."""
        return self._plan

    def ready_uids_unsafe(self) -> Tuple[int, ...]:
        """Uids currently in the ready FIFO (unsynchronized; tests only)."""
        return tuple(node.cmd.uid for node in self._ready_queue
                     if not node.taken)

    def lane_stats_unsafe(self) -> Tuple[Tuple[int, ...], int]:
        """(per-lane depths, ready-FIFO length); unsynchronized."""
        return (tuple(len(queue) for queue in self._lanes),
                len(self._ready_queue))
