"""Deterministic workload generation (paper §7.2).

The paper's application is a linked list of integers offering ``contains``
(read) and ``add`` (write).  A workload is characterized by its write
percentage — "15% of writes represents a workload with 15% of writes and 85%
of reads" — with uniformly random keys.  Generation is seeded so every run
of an experiment sees the identical command stream.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.core.command import Command

__all__ = ["WorkloadGenerator", "READ_OP", "WRITE_OP"]

READ_OP = "contains"
WRITE_OP = "add"


class WorkloadGenerator:
    """Seeded stream of read/write commands with a fixed write percentage."""

    def __init__(
        self,
        write_pct: float,
        key_space: int = 10_000,
        seed: int = 1,
        client_id: Optional[str] = None,
    ):
        if not 0.0 <= write_pct <= 100.0:
            raise ValueError(f"write_pct must be in [0, 100], got {write_pct}")
        if key_space < 1:
            raise ValueError(f"key_space must be >= 1, got {key_space}")
        self._write_fraction = write_pct / 100.0
        self._key_space = key_space
        self._rng = random.Random(seed)
        self._client_id = client_id
        self._issued = 0

    def next_command(self) -> Command:
        """Produce the next command of the stream."""
        rng = self._rng
        is_write = rng.random() < self._write_fraction
        key = rng.randrange(self._key_space)
        self._issued += 1
        return Command(
            op=WRITE_OP if is_write else READ_OP,
            args=(key,),
            client_id=self._client_id,
            request_id=self._issued,
            writes=is_write,
        )

    def commands(self, count: int) -> List[Command]:
        """Produce ``count`` commands eagerly (pre-created, paper §7.3)."""
        return [self.next_command() for _ in range(count)]

    def __iter__(self) -> Iterator[Command]:
        while True:
            yield self.next_command()

    @property
    def issued(self) -> int:
        """How many commands have been generated so far."""
        return self._issued
