"""Deterministic workload generation (paper §7.2).

The paper's application is a linked list of integers offering ``contains``
(read) and ``add`` (write).  A workload is characterized by its write
percentage — "15% of writes represents a workload with 15% of writes and 85%
of reads" — with uniformly random keys.  Generation is seeded so every run
of an experiment sees the identical command stream.

Beyond the paper's uniform keys, the generator supports a Zipfian key
distribution (``key_dist="zipf"``), the standard skewed-access model (YCSB's
default).  Skew concentrates traffic on few keys, which under keyed
conflicts raises the effective conflict rate and under sharded execution
(:mod:`repro.par`) imbalances the shards — both effects worth measuring.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Iterator, List, Optional, Tuple

from repro.core.command import Command

__all__ = ["WorkloadGenerator", "READ_OP", "WRITE_OP", "KEY_DISTRIBUTIONS"]

READ_OP = "contains"
WRITE_OP = "add"

#: Supported key distributions.
KEY_DISTRIBUTIONS = ("uniform", "zipf")


def _zipf_cdf(key_space: int, s: float) -> Tuple[float, ...]:
    """Cumulative distribution of P(rank) ∝ 1/rank^s over 1..key_space.

    Computed once per generator; draws are then one uniform variate plus a
    binary search, so a skewed stream costs the same as a uniform one.
    """
    weights = [1.0 / (rank ** s) for rank in range(1, key_space + 1)]
    total = sum(weights)
    cumulative = []
    running = 0.0
    for weight in weights:
        running += weight
        cumulative.append(running / total)
    cumulative[-1] = 1.0  # guard against float drift at the tail
    return tuple(cumulative)


class WorkloadGenerator:
    """Seeded stream of read/write commands with a fixed write percentage."""

    def __init__(
        self,
        write_pct: float,
        key_space: int = 10_000,
        seed: int = 1,
        client_id: Optional[str] = None,
        key_dist: str = "uniform",
        zipf_s: float = 0.99,
    ):
        """Args:
            write_pct: Percentage of write (``add``) commands in [0, 100].
            key_space: Keys are drawn from ``range(key_space)``.
            seed: RNG seed; identical seeds give identical streams.
            client_id: Stamped on generated commands (``None`` leaves them
                anonymous, e.g. for pre-created standalone workloads).
            key_dist: ``"uniform"`` (paper §7.2) or ``"zipf"`` (skewed;
                rank-``i`` key drawn with probability ∝ 1/i^s).
            zipf_s: Zipf exponent; 0.99 matches the YCSB default.  Larger
                is more skewed; 0 degenerates to uniform.
        """
        if not 0.0 <= write_pct <= 100.0:
            raise ValueError(f"write_pct must be in [0, 100], got {write_pct}")
        if key_space < 1:
            raise ValueError(f"key_space must be >= 1, got {key_space}")
        if key_dist not in KEY_DISTRIBUTIONS:
            raise ValueError(
                f"key_dist must be one of {KEY_DISTRIBUTIONS}, got "
                f"{key_dist!r}")
        if zipf_s < 0.0:
            raise ValueError(f"zipf_s must be >= 0, got {zipf_s}")
        self._write_fraction = write_pct / 100.0
        self._key_space = key_space
        self._rng = random.Random(seed)
        self._client_id = client_id
        self._issued = 0
        self.key_dist = key_dist
        self.zipf_s = zipf_s
        self._zipf_cdf: Optional[Tuple[float, ...]] = (
            _zipf_cdf(key_space, zipf_s) if key_dist == "zipf" else None)

    def _draw_key(self) -> int:
        if self._zipf_cdf is None:
            return self._rng.randrange(self._key_space)
        # Rank r (0-based) is drawn Zipf-distributed; ranks map to keys
        # identically in every process (rank == key), so the hottest key is
        # always 0 — convenient for reasoning about shard imbalance.
        return bisect_left(self._zipf_cdf, self._rng.random())

    def next_command(self) -> Command:
        """Produce the next command of the stream."""
        is_write = self._rng.random() < self._write_fraction
        key = self._draw_key()
        self._issued += 1
        return Command(
            op=WRITE_OP if is_write else READ_OP,
            args=(key,),
            client_id=self._client_id,
            request_id=self._issued,
            writes=is_write,
        )

    def commands(self, count: int) -> List[Command]:
        """Produce ``count`` commands eagerly (pre-created, paper §7.3)."""
        return [self.next_command() for _ in range(count)]

    def __iter__(self) -> Iterator[Command]:
        while True:
            yield self.next_command()

    @property
    def issued(self) -> int:
        """How many commands have been generated so far."""
        return self._issued
