"""Deterministic workload generation (paper §7.2).

The paper's application is a linked list of integers offering ``contains``
(read) and ``add`` (write).  A workload is characterized by its write
percentage — "15% of writes represents a workload with 15% of writes and 85%
of reads" — with uniformly random keys.  Generation is seeded so every run
of an experiment sees the identical command stream.

Beyond the paper's uniform keys, the generator supports a Zipfian key
distribution (``key_dist="zipf"``), the standard skewed-access model (YCSB's
default).  Skew concentrates traffic on few keys, which under keyed
conflicts raises the effective conflict rate and under sharded execution
(:mod:`repro.par`) imbalances the shards — both effects worth measuring.

For partitioned ordering (:mod:`repro.groups`) the generator can also dial
*partition-crossing* traffic: with ``cross_partition_fraction > 0`` (and
``n_partitions`` set) that fraction of commands becomes multi-key
(``add-all``/``contains-all``) with keys drawn from the configured
distribution but rejection-sampled into *distinct* partitions
(``stable_hash(key) % n_partitions``), so every such command genuinely
spans partitions.  The draw stays seeded and composes with Zipf skew.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Iterator, List, Optional, Tuple

from repro.core.command import Command, stable_hash

__all__ = [
    "WorkloadGenerator",
    "READ_OP",
    "WRITE_OP",
    "MULTI_READ_OP",
    "MULTI_WRITE_OP",
    "KEY_DISTRIBUTIONS",
]

READ_OP = "contains"
WRITE_OP = "add"
#: Multi-key operations used for partition-crossing commands (supported by
#: the linked-list service; see repro.apps.linked_list).
MULTI_READ_OP = "contains-all"
MULTI_WRITE_OP = "add-all"

#: Supported key distributions.
KEY_DISTRIBUTIONS = ("uniform", "zipf")


def _zipf_cdf(key_space: int, s: float) -> Tuple[float, ...]:
    """Cumulative distribution of P(rank) ∝ 1/rank^s over 1..key_space.

    Computed once per generator; draws are then one uniform variate plus a
    binary search, so a skewed stream costs the same as a uniform one.
    """
    weights = [1.0 / (rank ** s) for rank in range(1, key_space + 1)]
    total = sum(weights)
    cumulative = []
    running = 0.0
    for weight in weights:
        running += weight
        cumulative.append(running / total)
    cumulative[-1] = 1.0  # guard against float drift at the tail
    return tuple(cumulative)


class WorkloadGenerator:
    """Seeded stream of read/write commands with a fixed write percentage."""

    def __init__(
        self,
        write_pct: float,
        key_space: int = 10_000,
        seed: int = 1,
        client_id: Optional[str] = None,
        key_dist: str = "uniform",
        zipf_s: float = 0.99,
        cross_partition_fraction: float = 0.0,
        n_partitions: Optional[int] = None,
        keys_per_cross: int = 2,
    ):
        """Args:
            write_pct: Percentage of write (``add``) commands in [0, 100].
            key_space: Keys are drawn from ``range(key_space)``.
            seed: RNG seed; identical seeds give identical streams.
            client_id: Stamped on generated commands (``None`` leaves them
                anonymous, e.g. for pre-created standalone workloads).
            key_dist: ``"uniform"`` (paper §7.2) or ``"zipf"`` (skewed;
                rank-``i`` key drawn with probability ∝ 1/i^s).
            zipf_s: Zipf exponent; 0.99 matches the YCSB default.  Larger
                is more skewed; 0 degenerates to uniform.
            cross_partition_fraction: Fraction of commands (in [0, 1]) that
                become multi-key operations spanning distinct partitions
                (``add-all``/``contains-all``), for partitioned ordering
                experiments.  Requires ``n_partitions``.
            n_partitions: Partition count used to steer cross-partition
                keys into distinct partitions; must match the deployment's
                group count (repro.groups).
            keys_per_cross: Keys per cross-partition command (>= 2), each
                in a different partition.
        """
        if not 0.0 <= write_pct <= 100.0:
            raise ValueError(f"write_pct must be in [0, 100], got {write_pct}")
        if key_space < 1:
            raise ValueError(f"key_space must be >= 1, got {key_space}")
        if key_dist not in KEY_DISTRIBUTIONS:
            raise ValueError(
                f"key_dist must be one of {KEY_DISTRIBUTIONS}, got "
                f"{key_dist!r}")
        if zipf_s < 0.0:
            raise ValueError(f"zipf_s must be >= 0, got {zipf_s}")
        if not 0.0 <= cross_partition_fraction <= 1.0:
            raise ValueError(
                f"cross_partition_fraction must be in [0, 1], got "
                f"{cross_partition_fraction}")
        if cross_partition_fraction > 0.0:
            if n_partitions is None:
                raise ValueError(
                    "cross_partition_fraction > 0 requires n_partitions")
            if n_partitions < 2:
                raise ValueError(
                    f"cross-partition commands need n_partitions >= 2, "
                    f"got {n_partitions}")
            if keys_per_cross < 2:
                raise ValueError(
                    f"keys_per_cross must be >= 2, got {keys_per_cross}")
            if keys_per_cross > n_partitions:
                raise ValueError(
                    f"keys_per_cross={keys_per_cross} cannot span more "
                    f"partitions than exist ({n_partitions})")
        self._write_fraction = write_pct / 100.0
        self._key_space = key_space
        self._rng = random.Random(seed)
        self._client_id = client_id
        self._issued = 0
        self.key_dist = key_dist
        self.zipf_s = zipf_s
        self.cross_partition_fraction = cross_partition_fraction
        self.n_partitions = n_partitions
        self.keys_per_cross = keys_per_cross
        self._zipf_cdf: Optional[Tuple[float, ...]] = (
            _zipf_cdf(key_space, zipf_s) if key_dist == "zipf" else None)

    def _draw_key(self) -> int:
        if self._zipf_cdf is None:
            return self._rng.randrange(self._key_space)
        # Rank r (0-based) is drawn Zipf-distributed; ranks map to keys
        # identically in every process (rank == key), so the hottest key is
        # always 0 — convenient for reasoning about shard imbalance.
        return bisect_left(self._zipf_cdf, self._rng.random())

    def _draw_cross_keys(self) -> Tuple[int, ...]:
        """Distinct keys in ``keys_per_cross`` *distinct* partitions.

        The first key follows the configured distribution; further keys
        are rejection-sampled until they land in partitions not covered
        yet, so the command is guaranteed to cross partitions.  Bounded
        retries keep a pathological key space (few keys, skew piled on one
        partition) from spinning: the draw then falls back to scanning
        keys deterministically.

        Key distinctness is a hard invariant, not a sampling accident: a
        repeated key would silently shrink the command's conflict
        footprint (``MultiKeyedConflicts`` dedups arguments) and
        understate cross-partition conflict rates in ``bench_groups``.
        It holds because a key is accepted only when its partition is not
        yet covered, and partitions are a function of the key
        (``stable_hash(key) % n_partitions`` — the same map
        :class:`~repro.groups.partition.PartitionMap` routes by), so
        distinct partitions force distinct keys.  The assertion at the
        bottom pins the invariant against future edits to the draw.
        """
        keys = [self._draw_key()]
        partitions = {stable_hash(keys[0]) % self.n_partitions}
        attempts = 0
        while len(keys) < self.keys_per_cross and attempts < 64:
            attempts += 1
            key = self._draw_key()
            partition = stable_hash(key) % self.n_partitions
            if partition not in partitions:
                keys.append(key)
                partitions.add(partition)
        probe = keys[0]
        for _ in range(self._key_space):
            if len(keys) == self.keys_per_cross:
                break
            probe = (probe + 1) % self._key_space
            partition = stable_hash(probe) % self.n_partitions
            if partition not in partitions:
                keys.append(probe)
                partitions.add(partition)
        if len(keys) < self.keys_per_cross:
            raise ValueError(
                f"key_space={self._key_space} covers fewer than "
                f"{self.keys_per_cross} of {self.n_partitions} partitions")
        assert len(set(keys)) == len(keys), (
            f"cross-partition draw produced duplicate keys: {keys}")
        return tuple(keys)

    def next_command(self) -> Command:
        """Produce the next command of the stream."""
        is_write = self._rng.random() < self._write_fraction
        self._issued += 1
        if (self.cross_partition_fraction
                and self._rng.random() < self.cross_partition_fraction):
            return Command(
                op=MULTI_WRITE_OP if is_write else MULTI_READ_OP,
                args=self._draw_cross_keys(),
                client_id=self._client_id,
                request_id=self._issued,
                writes=is_write,
            )
        key = self._draw_key()
        return Command(
            op=WRITE_OP if is_write else READ_OP,
            args=(key,),
            client_id=self._client_id,
            request_id=self._issued,
            writes=is_write,
        )

    def commands(self, count: int) -> List[Command]:
        """Produce ``count`` commands eagerly (pre-created, paper §7.3)."""
        return [self.next_command() for _ in range(count)]

    def __iter__(self) -> Iterator[Command]:
        while True:
            yield self.next_command()

    @property
    def issued(self) -> int:
        """How many commands have been generated so far."""
        return self._issued
