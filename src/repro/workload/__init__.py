"""Workload generation for experiments and examples."""

from repro.workload.generator import READ_OP, WRITE_OP, WorkloadGenerator

__all__ = ["WorkloadGenerator", "READ_OP", "WRITE_OP"]
