"""Workload generation for experiments and examples."""

from repro.workload.generator import (
    MULTI_READ_OP,
    MULTI_WRITE_OP,
    READ_OP,
    WRITE_OP,
    WorkloadGenerator,
)

__all__ = ["WorkloadGenerator", "READ_OP", "WRITE_OP",
           "MULTI_READ_OP", "MULTI_WRITE_OP"]
