"""Cost models for the simulated execution environment.

Two kinds of cost are charged during a simulation:

- :class:`SyncCosts` — per-primitive synchronization costs charged by the
  simulated runtime itself (lock fast path, contended hand-off, atomic
  read-modify-write, semaphore operations).  The *contended hand-off* is the
  crucial one: waking a blocked thread costs on the order of microseconds on
  real hardware (futex wake + scheduler + cache warm-up), which is what makes
  lock-based schedulers plateau in the paper while the lock-free scheduler
  keeps scaling.
- :class:`~repro.core.cos.StructureCosts` — per-node CPU work charged by the
  COS algorithms (conflict checks, readiness scans); see
  :func:`structure_costs`.

Execution-cost presets follow the paper §7.2: the linked-list service is
initialized with 1k / 10k / 100k entries, giving *light*, *moderate* and
*heavy* commands.  Values approximate a JVM linked-list scan of those sizes
on the paper's 1.8 GHz Opterons and were calibrated so the standalone peaks
land in the paper's ranges (~500 / ~400 / ~100 kops/s); see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cos import StructureCosts

__all__ = [
    "SyncCosts",
    "ExecutionProfile",
    "LIGHT",
    "MODERATE",
    "HEAVY",
    "PROFILES",
    "structure_costs",
]

_US = 1e-6  # one microsecond
_NS = 1e-9  # one nanosecond


@dataclass(frozen=True)
class SyncCosts:
    """Synchronization primitive costs (seconds) charged by the sim runtime.

    Attributes:
        lock_fast: Mutex acquire/release when the caller was also the lock's
            previous holder (line stays in the caller's cache; biased /
            uncontended fast path).
        lock_remote: Mutex acquire when another thread held the lock last —
            the lock word and the data it guards must migrate between cores
            (coherence miss + fence).  This is what makes hand-over-hand
            walking expensive as soon as several walkers share the chain.
        handoff: Latency between releasing a contended *mutex* and the next
            waiter resuming.  Short critical sections are typically resolved
            by brief spinning, so this is cheap relative to a full park.
        park: Latency for a thread blocked on a *dependency* wait (semaphore
            down with no permits: the ``ready``/``space`` gates) to resume
            after being released — futex sleep, scheduler dispatch, cold
            caches.  This is what makes write barriers expensive: every
            write's dependents sit parked until the write completes.
        wake: CPU time the *waker* spends unparking a blocked thread
            (futex_wake syscall).  Crucial: when workers park on the
            ``ready`` semaphore, every insert pays this to wake one — it is
            what caps the paper's insert thread near 500 kops/s.
        atomic_load: An atomic/volatile read (cached line: ~a plain load).
        atomic_rmw: An atomic read-modify-write (CAS, atomic store with
            fence) — pays the coherence round trip.
        semaphore: Uncontended semaphore up/down.
        signal: Condition-variable signal with no waiter switch.
    """

    lock_fast: float = 15 * _NS
    lock_remote: float = 250 * _NS
    handoff: float = 0.9 * _US
    park: float = 6.0 * _US
    wake: float = 0.5 * _US
    atomic_load: float = 3 * _NS
    atomic_rmw: float = 30 * _NS
    semaphore: float = 30 * _NS
    signal: float = 60 * _NS

    @staticmethod
    def default() -> "SyncCosts":
        return SyncCosts()


@dataclass(frozen=True)
class ExecutionProfile:
    """A workload weight class (paper §7.2).

    Attributes:
        name: ``light`` / ``moderate`` / ``heavy``.
        list_size: Linked-list population the paper used for this class.
        execute_cost: Virtual CPU seconds to execute one command.
        insert_base: Fixed scheduler-side cost per insert (request handoff,
            node allocation, JVM-equivalent per-request overhead).  This is
            what pins the insert thread — and therefore every scheduler's
            ceiling — near ~500 kops/s in Figs. 2a/2b, exactly as the paper
            observes ("the thread inserting requests in the graph eventually
            becomes a bottleneck", §7.3.1).
        get_base / remove_base: Fixed worker-side costs around execution.
    """

    name: str
    list_size: int
    execute_cost: float
    insert_base: float = 1.45 * _US
    get_base: float = 0.25 * _US
    remove_base: float = 0.25 * _US


LIGHT = ExecutionProfile(name="light", list_size=1_000, execute_cost=3.5 * _US)
MODERATE = ExecutionProfile(name="moderate", list_size=10_000, execute_cost=42 * _US)
HEAVY = ExecutionProfile(name="heavy", list_size=100_000, execute_cost=670 * _US)

PROFILES = {p.name: p for p in (LIGHT, MODERATE, HEAVY)}


def structure_costs(per_node_visit: float = 6 * _NS,
                    per_edge: float = 50 * _NS,
                    retry_backoff: float = 0.3 * _US) -> StructureCosts:
    """Structure cost model used by all simulated COS instances.

    ``per_node_visit`` covers one conflict/readiness check against a resident
    node — a couple of JIT-compiled field reads and a comparison, so it is
    deliberately *small*.  What separates the three algorithms is not the
    visits but the synchronization each visit drags along: the fine-grained
    walk performs two mutex operations per node, the coarse-grained graph
    pays contended lock hand-offs per command, and the lock-free graph pays
    a handful of atomics (see :class:`SyncCosts`).  ``per_edge`` is the cost
    of materializing or deleting one dependency edge (set insert/remove,
    allocation), which dominates under write-heavy workloads where a new
    command conflicts with most of the resident graph.
    """
    return StructureCosts(
        insert_visit=per_node_visit,
        get_visit=per_node_visit * 2 / 3,  # get only tests a status flag
        remove_visit=per_node_visit,
        edge=per_edge,
        retry_backoff=retry_backoff,
    )
