"""Simulated processes (virtual threads).

A :class:`SimProcess` wraps an effect generator being interpreted by the
:class:`~repro.sim.runtime.SimRuntime`.  Processes model the scheduler and
worker threads of the paper's replicas; unlike OS threads they run one at a
time in real time but overlap freely in *virtual* time, so 64 simulated
workers genuinely execute 64 commands concurrently on the virtual clock.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

__all__ = ["SimProcess"]


class SimProcess:
    """Bookkeeping for one simulated thread."""

    __slots__ = ("gen", "name", "done", "result", "error", "_done_callbacks")

    def __init__(self, gen: Any, name: str):
        self.gen = gen
        self.name = name
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._done_callbacks: List[Callable[["SimProcess"], None]] = []

    def on_done(self, callback: Callable[["SimProcess"], None]) -> None:
        """Register a callback fired when the process finishes."""
        if self.done:
            callback(self)
        else:
            self._done_callbacks.append(callback)

    def finish(self, result: Any = None,
               error: Optional[BaseException] = None) -> None:
        """Mark the process completed and fire completion callbacks."""
        self.done = True
        self.result = result
        self.error = error
        callbacks, self._done_callbacks = self._done_callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return f"SimProcess({self.name}, {state})"
