"""Effect tracing for debugging and analysis.

A :class:`Tracer` records the stream of effects an algorithm performs —
optionally with virtual timestamps — without touching the runtimes: wrap
any effect generator with :func:`traced` and run it as usual (works with
both the threaded runtime and the simulator).

Typical uses: counting how many node visits an ``insert`` performs at a
given graph population, checking that ``lfGet`` retries stay rare, or
dumping a failing interleaving from a deterministic simulation run.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.core.effects import Effect
from repro.core.runtime import EffectGen

__all__ = ["Tracer", "TraceEntry", "traced"]

TraceEntry = Tuple[float, str, str]  # (time, label, effect kind)


class Tracer:
    """Bounded in-memory effect log with per-kind counters."""

    def __init__(self, capacity: int = 100_000,
                 clock: Optional[Callable[[], float]] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._entries: Deque[TraceEntry] = deque(maxlen=capacity)
        self._clock = clock or (lambda: 0.0)
        self.counts: Counter = Counter()

    def record(self, label: str, kind: str) -> None:
        self.counts[kind] += 1
        self._entries.append((self._clock(), label, kind))

    @property
    def entries(self) -> List[TraceEntry]:
        return list(self._entries)

    def count(self, kind: str) -> int:
        """Total effects of ``kind`` (class name, or ``"return"``)."""
        return self.counts[kind]

    def summary(self) -> str:
        """One line per effect kind, most frequent first."""
        lines = [f"{kind:>12}: {count}"
                 for kind, count in self.counts.most_common()]
        return "\n".join(lines)

    def clear(self) -> None:
        self._entries.clear()
        self.counts.clear()


def traced(gen: EffectGen, tracer: Tracer, label: str = "") -> EffectGen:
    """Wrap an effect generator, recording every effect it performs.

    Transparent to the runtime: effects and results pass through unchanged
    and the wrapped generator's return value is preserved.
    """
    result: Any = None
    while True:
        try:
            effect = gen.send(result)
        except StopIteration as stop:
            tracer.record(label, "return")
            return stop.value
        if isinstance(effect, Effect):
            tracer.record(label, type(effect).__name__)
        result = yield effect
