"""Deterministic discrete-event simulator.

A tiny, fast event-loop core: a binary heap of ``(time, sequence, callback)``
entries.  The sequence number makes event ordering total and therefore the
whole simulation deterministic — two runs with the same seed produce
identical traces, which the reproducibility tests rely on.

Virtual time is in **seconds** (floats).  The simulator knows nothing about
processes or synchronization; those live in :mod:`repro.sim.runtime` and
:mod:`repro.sim.sync` and are built purely out of ``schedule`` calls.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["Simulator"]


class Simulator:
    """Event heap plus virtual clock."""

    #: How many events to process between ``stop_when`` checks.
    _STOP_CHECK_INTERVAL = 256

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._events_processed = 0
        self._running = False

    # ------------------------------------------------------------ schedule

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` virtual seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback))

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute virtual time ``when`` (>= now)."""
        self.schedule(when - self.now, callback)

    # ----------------------------------------------------------------- run

    def run(
        self,
        until: Optional[float] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Process events until the heap drains, ``until`` is reached, or
        ``stop_when()`` turns true (checked periodically for speed).

        Returns the virtual time at which the run stopped.  Events scheduled
        beyond ``until`` stay in the heap, so ``run`` can be called again to
        continue the same simulation.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        heap = self._heap
        check_interval = self._STOP_CHECK_INTERVAL
        try:
            countdown = check_interval
            while heap:
                when = heap[0][0]
                if until is not None and when > until:
                    self.now = until
                    break
                _, _, callback = heapq.heappop(heap)
                self.now = when
                callback()
                self._events_processed += 1
                countdown -= 1
                if countdown == 0:
                    countdown = check_interval
                    if stop_when is not None and stop_when():
                        break
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return self.now

    def step(self) -> bool:
        """Process a single event.  Returns False when the heap is empty."""
        if not self._heap:
            return False
        when, _, callback = heapq.heappop(self._heap)
        self.now = when
        callback()
        self._events_processed += 1
        return True

    # ---------------------------------------------------------- inspection

    @property
    def pending_events(self) -> int:
        """Number of events currently in the heap."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        """Total events executed since construction."""
        return self._events_processed
