"""Simulated runtime: interprets effect generators on virtual time.

The same algorithm generators that :class:`~repro.core.threaded.ThreadedRuntime`
drives on OS threads are interpreted here as simulated processes.  Each
effect charges its cost from the :class:`~repro.sim.costs.SyncCosts` model;
blocking effects suspend the process until a simulated peer wakes it.

Four preemption modes:

- ``"quantum"`` (default): a process runs synchronously until it blocks or
  accumulates ``quantum`` seconds of charged cost, then reschedules itself.
  Fast — benchmark runs use this.  Within one slice the process's effects
  are applied atomically, so interleaving granularity is the quantum.
- ``"effect"``: every effect is its own event, giving the finest
  deterministic interleaving.  Slow — the concurrency tests use this to
  shake out algorithm races that quantum mode would hide.
- ``"fuzz"``: like ``"effect"``, but every effect also gets a small random
  delay from a seeded RNG, so different seeds explore *different* (still
  reproducible) interleavings.  A loop over seeds is a cheap randomized
  schedule explorer for the lock-free algorithms.
- ``"controlled"``: no clock and no RNG — every scheduling decision (which
  runnable process fires its next effect) is taken by an external driver
  through :meth:`SimRuntime.runnable_processes` /
  :meth:`SimRuntime.controlled_step`.  Each runnable process exposes the
  exact effect it will perform next (:meth:`SimRuntime.pending_effect`),
  which is what the systematic schedule-space explorer in
  :mod:`repro.check` needs for independence-based pruning.  Virtual time
  does not advance; ``Work`` effects are no-ops.
"""

from __future__ import annotations

import random
from functools import partial
from typing import Any, Dict, List, Optional

from repro.core.effects import (
    Acquire,
    Cas,
    Down,
    Effect,
    Load,
    Release,
    Signal,
    SignalAll,
    Store,
    Up,
    Wait,
    Work,
)
from repro.core.runtime import Condition, EffectGen, Mutex, Runtime
from repro.errors import SimulationError
from repro.sim.costs import SyncCosts
from repro.sim.process import SimProcess
from repro.sim.simulator import Simulator
from repro.sim.sync import SimAtomic, SimCondition, SimMutex, SimSemaphore

__all__ = ["SimRuntime"]

#: Effects one process may perform inside a single slice before the runtime
#: declares a livelock (a spin loop with no Work cost would otherwise hang
#: the simulation at a single virtual instant).
_LIVELOCK_LIMIT = 1_000_000

#: Accepted ``preemption`` constructor arguments, in documentation order.
_PREEMPTION_MODES = ("quantum", "effect", "fuzz", "controlled")


class SimRuntime(Runtime):
    """Runtime executing effect generators as simulated processes."""

    def __init__(
        self,
        simulator: Simulator,
        costs: SyncCosts = SyncCosts.default(),
        quantum: float = 1e-6,
        preemption: str = "quantum",
        fuzz_seed: int = 0,
        fuzz_jitter: float = 2e-7,
    ):
        if preemption not in _PREEMPTION_MODES:
            raise SimulationError(
                f"unknown preemption mode {preemption!r}; valid modes: "
                + ", ".join(repr(mode) for mode in _PREEMPTION_MODES))
        if quantum <= 0:
            raise SimulationError(f"quantum must be positive, got {quantum}")
        self._sim = simulator
        self._costs = costs
        self._quantum = quantum
        self._per_effect = preemption in ("effect", "fuzz")
        self._controlled = preemption == "controlled"
        self._fuzz: Optional[random.Random] = (
            random.Random(fuzz_seed) if preemption == "fuzz" else None)
        self._fuzz_jitter = fuzz_jitter
        self._spawned = 0
        # Controlled-mode state: processes in spawn order, the next effect of
        # each runnable process, and what each blocked process waits on.
        self._procs: List[SimProcess] = []
        self._pending: Dict[SimProcess, Effect] = {}
        self._blocked_on: Dict[SimProcess, Effect] = {}

    # ------------------------------------------------------------ factories

    def mutex(self) -> SimMutex:
        return SimMutex(self._schedule_resume, self._costs.handoff)

    def semaphore(self, initial: int = 0) -> SimSemaphore:
        # Semaphore waits are dependency waits (ready/space gates): a
        # blocked process fully parks, so resuming costs the park latency
        # rather than the cheaper mutex hand-off.
        return SimSemaphore(initial, self._schedule_resume, self._costs.park)

    def condition(self, mutex: Mutex) -> Condition:
        if not isinstance(mutex, SimMutex):
            raise SimulationError("condition() needs a mutex from this runtime")
        return SimCondition(mutex)

    def atomic(self, initial: Any = None) -> SimAtomic:
        return SimAtomic(initial)

    # ------------------------------------------------------------ processes

    def spawn(self, gen: EffectGen, name: Optional[str] = None) -> SimProcess:
        """Start interpreting ``gen`` as a new simulated process."""
        self._spawned += 1
        proc = SimProcess(gen, name or f"proc-{self._spawned}")
        if self._controlled:
            self._procs.append(proc)
            self._poll(proc, None)
        else:
            self._sim.schedule(0.0, partial(self._interpret, proc, None))
        return proc

    @property
    def simulator(self) -> Simulator:
        return self._sim

    # ---------------------------------------------------------- interpreter

    def _schedule_resume(self, proc: SimProcess, value: Any, delay: float) -> None:
        if self._controlled:
            # A peer unblocked this process: it becomes runnable again and
            # its next effect is exposed to the external scheduler.
            self._blocked_on.pop(proc, None)
            self._poll(proc, value)
            return
        if self._fuzz is not None:
            # Seeded jitter on every resume path (including blocking
            # wakeups) so each seed explores a distinct interleaving.
            delay += self._fuzz.random() * self._fuzz_jitter
        self._sim.schedule(delay, partial(self._interpret, proc, value))

    # ------------------------------------------------------ controlled mode

    def _poll(self, proc: SimProcess, value: Any) -> None:
        """Advance ``proc`` to its next ``yield`` and expose that effect."""
        try:
            effect = proc.gen.send(value)
        except StopIteration as stop:
            proc.finish(stop.value)
            return
        except Exception as error:  # algorithm bug: crash loudly
            proc.finish(None, error=error)
            raise
        self._pending[proc] = effect

    def runnable_processes(self) -> List[SimProcess]:
        """Processes that can fire an effect right now, in spawn order.

        Controlled mode only.  Spawn order makes decision indices stable
        across re-executions of the same program, which the explorer's
        prefix replay relies on.
        """
        return [proc for proc in self._procs if proc in self._pending]

    def pending_effect(self, proc: SimProcess) -> Effect:
        """The effect ``proc`` will perform on its next controlled step."""
        return self._pending[proc]

    def blocked_processes(self) -> List[SimProcess]:
        """Live processes waiting on a primitive, in spawn order."""
        return [proc for proc in self._procs if proc in self._blocked_on]

    def blocking_effect(self, proc: SimProcess) -> Effect:
        """The effect a blocked process is parked on (for diagnostics)."""
        return self._blocked_on[proc]

    def controlled_step(self, proc: SimProcess) -> None:
        """Perform ``proc``'s pending effect (controlled mode only).

        Non-blocking effects immediately re-poll the process, so it either
        becomes runnable again with a new pending effect or finishes.  A
        blocking effect parks the process on its primitive; the peer that
        later releases/ups/signals makes it runnable again.  Costs are not
        charged and virtual time does not advance: controlled mode explores
        *orderings*, not timings.
        """
        if not self._controlled:
            raise SimulationError(
                "controlled_step() requires preemption='controlled'")
        try:
            effect = self._pending.pop(proc)
        except KeyError:
            raise SimulationError(
                f"{proc.name} is not runnable (done or blocked)") from None
        cls = type(effect)
        value: Any = None
        if cls is Work:
            pass
        elif cls is Load:
            value = effect.cell.value
        elif cls is Cas:
            value = effect.cell.compare_and_set(effect.expected, effect.new)
        elif cls is Store:
            effect.cell.value = effect.value
        elif cls is Acquire:
            if not effect.mutex.acquire(proc):
                self._blocked_on[proc] = effect
                return  # blocked; release() will re-poll us
        elif cls is Release:
            effect.mutex.release(proc)
        elif cls is Down:
            if not effect.semaphore.down(proc):
                self._blocked_on[proc] = effect
                return  # blocked; up() will re-poll us
        elif cls is Up:
            effect.semaphore.up(effect.amount)
        elif cls is Wait:
            effect.condition.wait(proc)
            self._blocked_on[proc] = effect
            return  # blocked; signal + mutex hand-off will re-poll us
        elif cls is Signal:
            effect.condition.signal(proc)
        elif cls is SignalAll:
            effect.condition.signal_all(proc)
        else:
            raise SimulationError(f"unknown effect {effect!r}")
        self._poll(proc, value)

    def _interpret(self, proc: SimProcess, value: Any) -> None:
        """Advance ``proc`` until it blocks, exhausts its quantum, or ends."""
        gen = proc.gen
        costs = self._costs
        quantum = self._quantum
        per_effect = self._per_effect
        acc = 0.0
        budget = _LIVELOCK_LIMIT
        while True:
            try:
                effect = gen.send(value)
            except StopIteration as stop:
                if acc > 0:
                    self._sim.schedule(acc, partial(proc.finish, stop.value))
                else:
                    proc.finish(stop.value)
                return
            except Exception as error:  # algorithm bug: crash loudly
                proc.finish(None, error=error)
                raise
            budget -= 1
            if budget == 0:
                raise SimulationError(
                    f"{proc.name} performed {_LIVELOCK_LIMIT} effects in one "
                    f"slice at t={self._sim.now}: livelock?"
                )
            cls = type(effect)
            if cls is Work:
                acc += effect.cost
                value = None
            elif cls is Load:
                acc += costs.atomic_load
                value = effect.cell.value
            elif cls is Cas:
                acc += costs.atomic_rmw
                value = effect.cell.compare_and_set(effect.expected, effect.new)
            elif cls is Store:
                acc += costs.atomic_rmw
                effect.cell.value = effect.value
                value = None
            elif cls is Acquire:
                mutex = effect.mutex
                if mutex.last_holder is proc:
                    acc += costs.lock_fast
                else:
                    # The lock word (and the data it guards) lives in another
                    # core's cache: pay the coherence transfer.
                    acc += costs.lock_remote
                if not mutex.acquire(proc):
                    return  # blocked; release() will resume us
                value = None
            elif cls is Release:
                acc += costs.lock_fast
                if effect.mutex.release(proc):
                    acc += costs.wake  # futex wake paid by the releaser
                value = None
            elif cls is Down:
                acc += costs.semaphore
                if not effect.semaphore.down(proc):
                    return  # blocked; up() will resume us
                value = None
            elif cls is Up:
                acc += costs.semaphore
                woken = effect.semaphore.up(effect.amount)
                if woken:
                    acc += costs.wake * woken  # futex wakes paid by the caller
                value = None
            elif cls is Wait:
                effect.condition.wait(proc)
                return  # blocked; signal + mutex hand-off will resume us
            elif cls is Signal:
                acc += costs.signal
                effect.condition.signal(proc)
                value = None
            elif cls is SignalAll:
                acc += costs.signal
                effect.condition.signal_all(proc)
                value = None
            else:
                raise SimulationError(f"unknown effect {effect!r}")
            if per_effect or acc >= quantum:
                self._schedule_resume(proc, value, acc)
                return
