"""Simulated synchronization primitives.

Each primitive keeps a FIFO wait queue of :class:`SimProcess` objects and
wakes them through the runtime's resume hook, charging the configured
hand-off latency.  FIFO queues make the simulation fair and deterministic.

The runtime (not user code) calls these methods while interpreting effects;
see :mod:`repro.sim.runtime`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.core.runtime import AtomicCell, Condition, Mutex, Semaphore
from repro.errors import SimulationError
from repro.sim.process import SimProcess

__all__ = ["SimMutex", "SimSemaphore", "SimCondition", "SimAtomic"]

# Signature of the runtime hook used to resume a blocked process:
# resume(process, send_value, extra_delay).
ResumeHook = Callable[[SimProcess, Any, float], None]


class SimMutex(Mutex):
    """FIFO mutex that remembers its last holder (cache-coherence model)."""

    __slots__ = ("owner", "last_holder", "waiters", "_resume", "_handoff")

    def __init__(self, resume: ResumeHook, handoff: float):
        self.owner: Optional[SimProcess] = None
        self.last_holder: Optional[SimProcess] = None
        self.waiters: Deque[SimProcess] = deque()
        self._resume = resume
        self._handoff = handoff

    def acquire(self, proc: SimProcess) -> bool:
        """Try to take the mutex; on contention, queue and return False."""
        if self.owner is None:
            self.owner = proc
            self.last_holder = proc
            return True
        self.waiters.append(proc)
        return False

    def release(self, proc: SimProcess) -> bool:
        """Release; returns True when a blocked waiter had to be woken."""
        if self.owner is not proc:
            raise SimulationError(
                f"{proc.name} released a mutex owned by "
                f"{self.owner.name if self.owner else 'nobody'}"
            )
        if self.waiters:
            successor = self.waiters.popleft()
            self.owner = successor
            self.last_holder = successor
            self._resume(successor, None, self._handoff)
            return True
        self.owner = None
        return False

    def hand_to(self, proc: SimProcess) -> None:
        """Transfer ownership directly (condition-variable requeue path)."""
        if self.owner is None:
            self.owner = proc
            self.last_holder = proc
            self._resume(proc, None, self._handoff)
        else:
            self.waiters.append(proc)


class SimSemaphore(Semaphore):
    """FIFO counting semaphore."""

    __slots__ = ("value", "waiters", "_resume", "_handoff")

    def __init__(self, initial: int, resume: ResumeHook, handoff: float):
        if initial < 0:
            raise SimulationError(f"semaphore initial value {initial} < 0")
        self.value = initial
        self.waiters: Deque[SimProcess] = deque()
        self._resume = resume
        self._handoff = handoff

    def down(self, proc: SimProcess) -> bool:
        """P(): take a unit or queue; returns whether the caller proceeds."""
        if self.value > 0:
            self.value -= 1
            return True
        self.waiters.append(proc)
        return False

    def up(self, amount: int = 1) -> int:
        """V() ``amount`` times, waking queued processes first.

        Returns how many blocked processes were woken (the caller pays a
        wake cost for each).
        """
        woken = 0
        for _ in range(amount):
            if self.waiters:
                successor = self.waiters.popleft()
                self._resume(successor, None, self._handoff)
                woken += 1
            else:
                self.value += 1
        return woken


class SimCondition(Condition):
    """Condition variable bound to a :class:`SimMutex` (Mesa semantics)."""

    __slots__ = ("mutex", "waiters")

    def __init__(self, mutex: SimMutex):
        self.mutex = mutex
        self.waiters: Deque[SimProcess] = deque()

    def wait(self, proc: SimProcess) -> None:
        """Atomically release the mutex and join the wait queue."""
        self.waiters.append(proc)
        self.mutex.release(proc)

    def signal(self, proc: SimProcess) -> None:
        """Move one waiter to the mutex queue (caller must hold the mutex)."""
        if self.mutex.owner is not proc:
            raise SimulationError(f"{proc.name} signalled without holding the mutex")
        if self.waiters:
            self.mutex.waiters.append(self.waiters.popleft())

    def signal_all(self, proc: SimProcess) -> None:
        if self.mutex.owner is not proc:
            raise SimulationError(f"{proc.name} signalled without holding the mutex")
        while self.waiters:
            self.mutex.waiters.append(self.waiters.popleft())


class SimAtomic(AtomicCell):
    """Linearizable register; atomicity is free inside one event callback."""

    __slots__ = ("value",)

    def __init__(self, initial: Any):
        self.value = initial

    def compare_and_set(self, expected: Any, new: Any) -> bool:
        # Reference CAS, matching _ThreadedAtomic: identity comparison so a
        # distinct-but-equal object can never satisfy the expectation.
        if self.value is expected:
            self.value = new
            return True
        return False
