"""Deterministic discrete-event simulation substrate.

Executes the same COS effect generators as the threaded runtime, but on a
virtual clock with a synchronization cost model — this is how the repository
reproduces the paper's multi-core throughput results on a single GIL-bound
interpreter (see DESIGN.md §2).
"""

from repro.sim.costs import (
    HEAVY,
    LIGHT,
    MODERATE,
    PROFILES,
    ExecutionProfile,
    SyncCosts,
    structure_costs,
)
from repro.sim.metrics import Metrics
from repro.sim.process import SimProcess
from repro.sim.runtime import SimRuntime
from repro.sim.simulator import Simulator
from repro.sim.sync import SimAtomic, SimCondition, SimMutex, SimSemaphore
from repro.sim.trace import TraceEntry, Tracer, traced

__all__ = [
    "Simulator",
    "SimRuntime",
    "SimProcess",
    "SimMutex",
    "SimSemaphore",
    "SimCondition",
    "SimAtomic",
    "SyncCosts",
    "ExecutionProfile",
    "LIGHT",
    "MODERATE",
    "HEAVY",
    "PROFILES",
    "structure_costs",
    "Metrics",
    "Tracer",
    "TraceEntry",
    "traced",
]
