"""Measurement helpers for simulation runs.

The paper measures *throughput at the servers* and *latency at the clients*
after a warm-up phase (§7.2).  :class:`Metrics` mirrors that: counters are
timestamped against the virtual clock, and the reporting helpers exclude
everything before ``mark_warm()`` was called.

A :class:`Metrics` can optionally be bridged to a
:class:`repro.obs.MetricsRegistry`, so a DES figure run records through
the same registry API as the threaded and TCP deployments (counter per
``incr`` name, ``latency_seconds`` histogram for latencies).  Without a
registry the bridge is the shared no-op and nothing changes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.obs.stats import quantile
from repro.sim.simulator import Simulator

__all__ = ["Metrics", "TimeSeries"]


class TimeSeries:
    """Periodic samples of a counter's rate on the virtual clock.

    Call :meth:`sample` on a fixed virtual-time cadence (e.g. from a
    dedicated sampling process); each sample records the counter's rate
    over the elapsed interval, giving throughput-over-time curves for
    transient analysis (warm-up, crash dips, recovery ramps).
    """

    def __init__(self, simulator: Simulator):
        self._sim = simulator
        self._last_time = simulator.now
        self._last_count = 0
        self.points: List[Tuple[float, float]] = []  # (time, rate)

    def sample(self, count: int) -> None:
        now = self._sim.now
        elapsed = now - self._last_time
        if elapsed <= 0:
            # Same virtual instant as the previous sample: keep the old
            # baseline so this delta lands in the next interval instead of
            # silently vanishing (overwriting ``_last_count`` here used to
            # lose the events between the two samples).
            return
        rate = (count - self._last_count) / elapsed
        self.points.append((now, rate))
        self._last_time = now
        self._last_count = count


class Metrics:
    """Counters and latency samples on the virtual clock."""

    def __init__(self, simulator: Simulator,
                 registry: Optional[MetricsRegistry] = None):
        self._sim = simulator
        self._registry = registry if registry is not None else NULL_REGISTRY
        self._counts: Dict[str, int] = {}
        self._warm_counts: Dict[str, int] = {}
        self._latencies: List[float] = []
        self._warm_at: Optional[float] = None

    # ------------------------------------------------------------ recording

    def incr(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount
        if self._registry.enabled:
            self._registry.counter(name).inc(amount)

    def record_latency(self, seconds: float) -> None:
        if self._warm_at is not None:
            self._latencies.append(seconds)
            if self._registry.enabled:
                self._registry.histogram("latency_seconds").observe(seconds)

    def mark_warm(self) -> None:
        """End the warm-up phase: snapshot counters and note the time."""
        self._warm_at = self._sim.now
        self._warm_counts = dict(self._counts)

    # ------------------------------------------------------------ reporting

    def count(self, name: str) -> int:
        """Total count since the start of the run."""
        return self._counts.get(name, 0)

    def warm_count(self, name: str) -> int:
        """Count since ``mark_warm()`` (0 if warm-up never ended)."""
        if self._warm_at is None:
            return 0
        return self._counts.get(name, 0) - self._warm_counts.get(name, 0)

    def throughput(self, name: str) -> float:
        """Events per virtual second since ``mark_warm()``."""
        if self._warm_at is None:
            return 0.0
        elapsed = self._sim.now - self._warm_at
        if elapsed <= 0:
            return 0.0
        return self.warm_count(name) / elapsed

    def latency_stats(self) -> Tuple[float, float, float]:
        """(mean, median, p99) of recorded latencies, in seconds.

        Quantiles use linear interpolation (repro.obs.stats.quantile): the
        median of an even-sized sample is the mean of the two middle
        elements, and p99 interpolates instead of indexing
        ``int(n * 0.99)`` — which returned the *minimum* for n <= 100.
        """
        if not self._latencies:
            return (0.0, 0.0, 0.0)
        ordered = sorted(self._latencies)
        mean = sum(ordered) / len(ordered)
        return (mean, quantile(ordered, 0.5), quantile(ordered, 0.99))

    @property
    def warm_started(self) -> bool:
        return self._warm_at is not None

    def time_series(self) -> TimeSeries:
        """A rate sampler bound to this metrics object's clock."""
        return TimeSeries(self._sim)
