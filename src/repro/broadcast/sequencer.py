"""Sequencer-based total order broadcast, with an optimistic fast path.

The simplest way to totally order messages: one distinguished node (the
sequencer) stamps each payload with a sequence number and relays it to
every node; nodes deliver stamped payloads in stamp order.  It is *not*
fault tolerant in the consensus sense — safety across a failover relies
on the deposed sequencer being fail-stop (see :meth:`promote`) — but it
is the lowest-latency ordering layer in the repository and the substrate
of the optimistic execution pipeline (:mod:`repro.spec`).

**Optimistic mode** (``optimistic=True``): the *submitting* node
broadcasts an :class:`OptimisticAnnounce` the moment a payload enters
the system and self-delivers it as :class:`DeliverOptimistic` — one
network hop ahead of the stamped path (submit → sequencer → stamp).
Arrival order of announcements is the receiver's *guess* at the total
order; the stamped delivery later confirms or corrects it.  A payload is
announced exactly once, at original submission — epoch-change resubmits
are never re-announced, so the optimistic stream cannot double-deliver.

**Failover** (:meth:`promote`): any node may take over sequencing.  It
increments the *epoch*, fixes the new epoch's ``base`` at its own
delivery frontier, broadcasts :class:`NewEpoch` and re-stamps its
unconfirmed submissions; peers adopt the epoch, void pending old-epoch
stamps at or above ``base``, and re-forward their own unconfirmed
submissions to the new sequencer.  The epoch guard is what keeps the
sequence bookkeeping sound across the transition:

- a deposed sequencer's stamp at or above ``base`` is discarded (its
  position will be re-stamped in the new epoch), instead of colliding
  with — or being shadowed by — the new epoch's stamp for the same
  position (pre-fix this double-delivered one payload or dropped the
  other, leaving a permanent gap; see tests/test_bugfix_regressions.py);
- a stamp *below* ``base`` is accepted from any earlier epoch: both
  regimes agree on that prefix;
- stamps from a not-yet-adopted future epoch are buffered until the
  corresponding :class:`NewEpoch` arrives (network reordering).

Re-stamping is at-least-once: a payload whose old-epoch stamp was
delivered somewhere may be stamped again by the new sequencer.  The new
sequencer drops resubmits it has recently delivered (bounded equality
window), and command-level dedup at the replica layer
(:class:`~repro.smr.replica.ParallelReplica`) is the exactly-once
safety net — the broadcast layer's own guarantee is a gap-free,
collision-free sequence of stamped slots at every node.

Safety assumption, stated plainly: promotion assumes the deposed
sequencer stamps nothing after any node delivers a position at or above
the new ``base`` (fail-stop).  Tolerating an arbitrarily slow old
sequencer requires consensus on the epoch change — that is
:class:`~repro.broadcast.paxos.MultiPaxos`'s job.

Same pure-state-machine shape as MultiPaxos, so the adapters are shared.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Tuple

from repro.broadcast.messages import (
    Deliver,
    DeliverOptimistic,
    NewEpoch,
    OptimisticAnnounce,
    Send,
    SequencerStamp,
)
from repro.errors import ConfigurationError

__all__ = ["SequencerBroadcast"]

Action = Any

#: Recently delivered payloads remembered for resubmit dedup (equality
#: scan; only consulted once an epoch change has happened).
RECENT_DELIVERED_WINDOW = 64


class SequencerBroadcast:
    """One node's state for sequencer-based atomic broadcast."""

    SEQUENCER = 0

    def __init__(self, node_id: int, n: int, optimistic: bool = False):
        if n < 1:
            raise ConfigurationError(f"n must be positive, got {n}")
        if not 0 <= node_id < n:
            raise ConfigurationError(f"node_id {node_id} out of range for n={n}")
        self.node_id = node_id
        self.n = n
        self.optimistic = optimistic
        self._next_seq = 0           # sequencer: next stamp to hand out
        self._next_deliver = 0       # everyone: next stamp to deliver
        #: seq -> (epoch, payload): stamped but not yet deliverable.
        self._pending: Dict[int, Tuple[int, Any]] = {}
        self._epoch = 0
        self._sequencer = self.SEQUENCER
        #: First position the current epoch may stamp; below it the order
        #: is final under earlier epochs.
        self._epoch_base = 0
        #: Own submissions not yet conservatively delivered, in submit
        #: order — re-forwarded to the new sequencer on an epoch change.
        self._inflight: List[Any] = []
        #: Stamps from epochs we have not adopted yet (reordered network).
        self._future_stamps: List[SequencerStamp] = []
        #: Recently delivered payloads (resubmit dedup after failover).
        self._recent_delivered: Deque[Any] = deque(
            maxlen=RECENT_DELIVERED_WINDOW)

    @property
    def is_sequencer(self) -> bool:
        return self.node_id == self._sequencer

    @property
    def epoch(self) -> int:
        return self._epoch

    def start(self) -> List[Action]:
        """No timers needed; present for adapter symmetry."""
        return []

    def submit(self, payload: Any) -> List[Action]:
        """A client payload arrived at this node."""
        actions: List[Action] = []
        if self.optimistic:
            actions.extend(
                Send(peer, OptimisticAnnounce(payload))
                for peer in range(self.n) if peer != self.node_id
            )
            actions.append(DeliverOptimistic(payload))
        if self.is_sequencer:
            actions.extend(self._stamp(payload))
        else:
            self._inflight.append(payload)
            actions.append(Send(self._sequencer, payload))
        return actions

    def on_message(self, src: int, msg: Any) -> List[Action]:
        if isinstance(msg, SequencerStamp):
            return self._on_stamp(msg)
        if isinstance(msg, OptimisticAnnounce):
            return [DeliverOptimistic(msg.payload)] if self.optimistic else []
        if isinstance(msg, NewEpoch):
            return self._on_new_epoch(msg)
        if self.is_sequencer:
            return self._on_forward(msg)
        raise ConfigurationError(
            f"non-sequencer node {self.node_id} received unstamped payload"
        )

    def on_timer(self, name: str) -> List[Action]:
        raise ConfigurationError(f"sequencer broadcast has no timer {name!r}")

    # ------------------------------------------------------------- failover

    def promote(self) -> List[Action]:
        """Take over sequencing in a new epoch (administrative operation).

        Caller contract: the current sequencer is dead (fail-stop) — see
        the module docstring for exactly what that buys.  Idempotent on
        the current sequencer.
        """
        if self.is_sequencer:
            return []
        self._epoch += 1
        self._sequencer = self.node_id
        self._epoch_base = self._next_deliver
        self._next_seq = self._epoch_base
        # Pending stamps at or above the base are void: the positions
        # they claimed will be re-stamped in the new epoch.
        self._drop_void_pending()
        actions: List[Action] = [
            Send(peer, NewEpoch(self._epoch, self.node_id, self._epoch_base))
            for peer in range(self.n) if peer != self.node_id
        ]
        # Re-stamp own unconfirmed submissions (no re-announce: the
        # optimistic stream saw them at original submission).
        resubmits, self._inflight = self._inflight, []
        for payload in resubmits:
            actions.extend(self._stamp(payload))
        return actions

    def _on_new_epoch(self, msg: NewEpoch) -> List[Action]:
        if msg.epoch <= self._epoch:
            return []  # stale announcement
        self._epoch = msg.epoch
        self._sequencer = msg.sequencer
        self._epoch_base = msg.base
        if self.is_sequencer:  # pragma: no cover - defensive
            self._next_seq = max(self._next_seq, msg.base)
        self._drop_void_pending()
        actions: List[Action] = []
        # Re-forward own unconfirmed submissions to the new sequencer
        # (at-least-once; its recent-delivered window and replica-level
        # dedup absorb the overlap with already-stamped copies).
        for payload in self._inflight:
            actions.append(Send(self._sequencer, payload))
        # Replay stamps that arrived ahead of this epoch announcement.
        replay, self._future_stamps = self._future_stamps, []
        for stamp in replay:
            actions.extend(self._on_stamp(stamp))
        return actions

    def _drop_void_pending(self) -> None:
        for seq in [s for s, (epoch, _) in self._pending.items()
                    if epoch < self._epoch and s >= self._epoch_base]:
            del self._pending[seq]

    # ------------------------------------------------------------- ordering

    def _on_forward(self, payload: Any) -> List[Action]:
        if self._epoch > 0 and any(
                payload == recent for recent in self._recent_delivered):
            return []  # resubmit of a payload this epoch already delivered
        return self._stamp(payload)

    def _stamp(self, payload: Any) -> List[Action]:
        seq = self._next_seq
        self._next_seq += 1
        msg = SequencerStamp(seq, payload, self._epoch)
        actions: List[Action] = [
            Send(peer, msg) for peer in range(self.n) if peer != self.node_id
        ]
        actions.extend(self._learn(seq, payload, self._epoch))
        return actions

    def _on_stamp(self, msg: SequencerStamp) -> List[Action]:
        if msg.epoch > self._epoch:
            # Reordered network: the stamp outran its NewEpoch.  Buffer —
            # delivering it now could assign the wrong position.
            self._future_stamps.append(msg)
            return []
        if msg.epoch < self._epoch and msg.seq >= self._epoch_base:
            # A deposed sequencer's stamp for a position the new epoch
            # owns: void (the new sequencer re-stamps that position).
            return []
        return self._learn(msg.seq, msg.payload, msg.epoch)

    def _learn(self, seq: int, payload: Any, epoch: int) -> List[Action]:
        if seq < self._next_deliver or seq in self._pending:
            return []  # duplicate
        self._pending[seq] = (epoch, payload)
        actions: List[Action] = []
        while self._next_deliver in self._pending:
            _, delivered = self._pending.pop(self._next_deliver)
            self._record_delivered(delivered)
            actions.append(Deliver(self._next_deliver, delivered))
            self._next_deliver += 1
        return actions

    def _record_delivered(self, payload: Any) -> None:
        self._recent_delivered.append(payload)
        for index, mine in enumerate(self._inflight):
            if mine == payload:
                del self._inflight[index]
                break
