"""Sequencer-based total order broadcast.

The simplest way to totally order messages: one distinguished node (the
sequencer, node 0) stamps each payload with a sequence number and relays it
to every node; nodes deliver stamped payloads in stamp order.  It is *not*
fault tolerant — if the sequencer crashes the protocol stops — but it is
useful as a fast path for tests and as the baseline ordering layer for
single-node experiments.  Use :class:`~repro.broadcast.paxos.MultiPaxos`
when crash tolerance is required.

Same pure-state-machine shape as MultiPaxos, so the adapters are shared.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.broadcast.messages import Deliver, Send, SequencerStamp
from repro.errors import ConfigurationError

__all__ = ["SequencerBroadcast"]

Action = Any


class SequencerBroadcast:
    """One node's state for sequencer-based atomic broadcast."""

    SEQUENCER = 0

    def __init__(self, node_id: int, n: int):
        if n < 1:
            raise ConfigurationError(f"n must be positive, got {n}")
        if not 0 <= node_id < n:
            raise ConfigurationError(f"node_id {node_id} out of range for n={n}")
        self.node_id = node_id
        self.n = n
        self._next_seq = 0           # sequencer: next stamp to hand out
        self._next_deliver = 0       # everyone: next stamp to deliver
        self._pending: Dict[int, Any] = {}

    @property
    def is_sequencer(self) -> bool:
        return self.node_id == self.SEQUENCER

    def start(self) -> List[Action]:
        """No timers needed; present for adapter symmetry."""
        return []

    def submit(self, payload: Any) -> List[Action]:
        """A client payload arrived at this node."""
        if self.is_sequencer:
            return self._stamp(payload)
        return [Send(self.SEQUENCER, payload)]

    def on_message(self, src: int, msg: Any) -> List[Action]:
        if isinstance(msg, SequencerStamp):
            return self._learn(msg.seq, msg.payload)
        if self.is_sequencer:
            return self._stamp(msg)  # a forwarded payload
        raise ConfigurationError(
            f"non-sequencer node {self.node_id} received unstamped payload"
        )

    def on_timer(self, name: str) -> List[Action]:
        raise ConfigurationError(f"sequencer broadcast has no timer {name!r}")

    def _stamp(self, payload: Any) -> List[Action]:
        seq = self._next_seq
        self._next_seq += 1
        msg = SequencerStamp(seq, payload)
        actions: List[Action] = [
            Send(peer, msg) for peer in range(self.n) if peer != self.node_id
        ]
        actions.extend(self._learn(seq, payload))
        return actions

    def _learn(self, seq: int, payload: Any) -> List[Action]:
        if seq < self._next_deliver or seq in self._pending:
            return []  # duplicate
        self._pending[seq] = payload
        actions: List[Action] = []
        while self._next_deliver in self._pending:
            actions.append(
                Deliver(self._next_deliver, self._pending.pop(self._next_deliver))
            )
            self._next_deliver += 1
        return actions
