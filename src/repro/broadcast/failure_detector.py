"""Timeout bookkeeping for leader liveness (unreliable failure detector).

Atomic broadcast is impossible in a purely asynchronous system (FLP); like
the paper's BFT-SMaRt substrate, we rely on an unreliable failure detector:
followers suspect the leader after a period with no leader activity, then
try to take over with a higher ballot.  Suspicions may be wrong — safety
never depends on them, only liveness.
"""

from __future__ import annotations

__all__ = ["TimeoutTracker"]


class TimeoutTracker:
    """Tracks activity of a monitored peer against a timeout.

    The protocol records leader activity with :meth:`record_activity`; the
    periodic liveness check calls :meth:`expired`, which reports whether a
    full period elapsed with no activity and starts the next period.
    """

    def __init__(self) -> None:
        self._active_since_check = False
        self._ever_checked = False

    def record_activity(self) -> None:
        """Note that the monitored peer showed signs of life."""
        self._active_since_check = True

    def expired(self) -> bool:
        """True if no activity was recorded since the previous check."""
        quiet = not self._active_since_check
        self._active_since_check = False
        first = not self._ever_checked
        self._ever_checked = True
        # Grace period: the first check never suspects, so a freshly started
        # follower gives the leader one full period to be heard.
        return quiet and not first

    def reset(self) -> None:
        """Restart monitoring (e.g. after a leader change)."""
        self._active_since_check = False
        self._ever_checked = False
