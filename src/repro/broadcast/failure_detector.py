"""Timeout bookkeeping for leader liveness (unreliable failure detector).

Atomic broadcast is impossible in a purely asynchronous system (FLP); like
the paper's BFT-SMaRt substrate, we rely on an unreliable failure detector:
followers suspect the leader after a period with no leader activity, then
try to take over with a higher ballot.  Suspicions may be wrong — safety
never depends on them, only liveness.

This module also holds the lease bookkeeping for the Multi-Paxos fast read
path (see docs/ordering.md): :class:`LeaseGrant` is a follower's record of
the lease it granted to the current leader, :class:`QuorumLease` the
leader's view of the grants a quorum gave back via heartbeat acks.  Unlike
timeout suspicions, lease *safety* does depend on clocks — but only on
bounded clock-rate drift over one lease window, which ``lease_margin``
absorbs; no absolute clock synchronization is assumed.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["TimeoutTracker", "LeaseGrant", "QuorumLease"]

#: LeaseGrant holder value meaning "some leader, identity unknown" — used by
#: a rejoining replica to sit out one lease window before voting, since it
#: cannot remember whom (if anyone) it granted a lease before crashing.
UNKNOWN_HOLDER = -1


class TimeoutTracker:
    """Tracks activity of a monitored peer against a timeout.

    The protocol records leader activity with :meth:`record_activity`; the
    periodic liveness check calls :meth:`expired`, which reports whether a
    full period elapsed with no activity and starts the next period.
    """

    def __init__(self) -> None:
        self._active_since_check = False
        self._ever_checked = False

    def record_activity(self) -> None:
        """Note that the monitored peer showed signs of life."""
        self._active_since_check = True

    def expired(self) -> bool:
        """True if no activity was recorded since the previous check."""
        quiet = not self._active_since_check
        self._active_since_check = False
        first = not self._ever_checked
        self._ever_checked = True
        # Grace period: the first check never suspects, so a freshly started
        # follower gives the leader one full period to be heard.
        return quiet and not first

    def reset(self) -> None:
        """Restart monitoring (e.g. after a leader change)."""
        self._active_since_check = False
        self._ever_checked = False


class LeaseGrant:
    """Follower-side lease: the promise not to elect anyone else for a while.

    Granting node ``holder`` a lease until ``until`` (local clock) commits
    this follower to (a) not campaigning itself and (b) answering other
    candidates' ``Prepare``s with a Nack until the grant expires.  Both are
    pure local-clock checks; the grant is refreshed by every heartbeat.
    """

    __slots__ = ("holder", "until")

    def __init__(self) -> None:
        self.holder: Optional[int] = None
        self.until = float("-inf")

    def grant(self, holder: int, now: float, duration: float) -> None:
        """(Re)grant the lease to ``holder`` for ``duration`` from ``now``."""
        self.holder = holder
        self.until = now + duration

    def active(self, now: float) -> bool:
        return self.holder is not None and now < self.until

    def blocks(self, candidate: int, now: float) -> bool:
        """True if an active grant forbids promising/campaigning for
        ``candidate``.  The current holder itself is never blocked (it may
        re-prepare at a higher ballot, e.g. after a partial network hiccup).
        """
        return self.active(now) and candidate != self.holder


class QuorumLease:
    """Leader-side lease: valid while a quorum's grants are unexpired.

    Every grant expiry is computed on the *leader's* clock: the follower
    echoes the heartbeat's ``sent_at`` (a leader-clock reading) and the
    leader holds the grant until ``sent_at + duration - margin``.  The
    follower blocks elections until ``receive_time + duration`` on its own
    clock, and ``receive_time >= sent_at`` in real time, so the follower's
    blocking window outlasts the leader's serving window as long as relative
    clock-*rate* drift over one window stays under ``margin``.
    """

    __slots__ = ("quorum", "duration", "margin", "_grants")

    def __init__(self, quorum: int, duration: float, margin: float) -> None:
        self.quorum = quorum
        self.duration = duration
        self.margin = margin
        self._grants: Dict[int, float] = {}

    def record_ack(self, src: int, sent_at: float) -> None:
        """A follower acked the heartbeat we sent at ``sent_at``."""
        expiry = sent_at + self.duration - self.margin
        if expiry > self._grants.get(src, float("-inf")):
            self._grants[src] = expiry

    def valid(self, now: float) -> bool:
        """True while this node plus unexpired grants form a quorum.

        The leader always counts itself (it does not suspect itself), so a
        single-node cluster holds a permanent lease.
        """
        live = 1 + sum(1 for expiry in self._grants.values() if expiry > now)
        return live >= self.quorum

    def reset(self) -> None:
        """Drop all grants (ballot changed: old-ballot acks are void)."""
        self._grants.clear()
