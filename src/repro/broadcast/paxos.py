"""Multi-Paxos atomic broadcast as a pure state machine.

This is the ordering substrate standing in for BFT-SMaRt configured for
crash faults (paper §7.1): ``n = 2f + 1`` replicas, a stable leader that
batches client payloads into consensus instances, and delivery of decided
instances in instance order at every replica.

Design notes:

- **Pure state machine.**  Every input (``submit``, ``on_message``,
  ``on_timer``) returns a list of actions (:class:`Send`, :class:`Deliver`,
  :class:`SetTimer`); the protocol never touches the network or the clock.
- **Ballots** are ``(round, node_id)`` pairs; any node may campaign by
  picking a round above everything it has seen.  Node 0 starts as leader of
  ballot ``(0, 0)`` without a prepare phase, which is safe because every
  acceptor starts with ``promised < (0, 0)``.
- **Batching** (paper §7.1): the leader packs up to ``batch_size`` pending
  payloads into one instance, and keeps at most ``pipeline`` instances in
  flight.
- **Gaps** left by a leader change are filled with a no-op value that is
  never delivered to the application.
- **Catch-up**: a replica that sees a decision beyond its contiguous prefix
  asks the decider for the missing instances.

Safety (agreement + total order) holds under message loss, duplication and
reordering and any number of suspicions; liveness additionally needs a
correct majority and eventually-timely leader communication, as usual.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.broadcast.failure_detector import TimeoutTracker
from repro.broadcast.messages import (
    Accept,
    Accepted,
    Ballot,
    CatchupReply,
    CatchupRequest,
    Decide,
    Deliver,
    Forward,
    Heartbeat,
    Nack,
    Prepare,
    Promise,
    Send,
    SetTimer,
)
from repro.errors import ConfigurationError

__all__ = ["MultiPaxos", "NOOP", "FORWARD_HOP_LIMIT"]

#: Filler value proposed for gap instances after a leader change.  Never
#: delivered to the application.
NOOP = "__paxos_noop__"

#: Relays one Forward may take before the carrying node queues the payload
#: locally instead of chasing another stale leader hint.  Any value >= the
#: cluster size terminates a circular-hint cycle; generous slack keeps
#: legitimate multi-hop chases (hint chains during a leader change) alive.
FORWARD_HOP_LIMIT = 8

#: Timer names used with SetTimer.
HEARTBEAT_TIMER = "heartbeat"
LEADER_TIMER = "leader_check"

Action = Any


class _InFlight:
    """Leader-side bookkeeping for one undecided instance."""

    __slots__ = ("value", "acks")

    def __init__(self, value: Any, acks: Set[int]):
        self.value = value
        self.acks = acks


class MultiPaxos:
    """One replica's Multi-Paxos protocol state."""

    def __init__(
        self,
        node_id: int,
        n: int,
        batch_size: int = 64,
        pipeline: int = 32,
        heartbeat_interval: float = 0.05,
        leader_timeout: float = 0.2,
        first_instance: int = 0,
        stable_store=None,
    ):
        if n < 1 or n % 2 == 0:
            raise ConfigurationError(f"n must be odd and positive, got {n}")
        if not 0 <= node_id < n:
            raise ConfigurationError(f"node_id {node_id} out of range for n={n}")
        if batch_size < 1 or pipeline < 1:
            raise ConfigurationError("batch_size and pipeline must be >= 1")
        self.node_id = node_id
        self.n = n
        self.quorum = n // 2 + 1
        self.batch_size = batch_size
        self.pipeline = pipeline
        self.heartbeat_interval = heartbeat_interval
        self.leader_timeout = leader_timeout

        # Acceptor state (restored from stable storage when provided, so a
        # recovered replica never forgets a promise — see broadcast/storage).
        self._store = stable_store
        self.promised: Ballot = (-1, -1)
        self.accepted: Dict[int, Tuple[Ballot, Any]] = {}

        # Learner state.  ``first_instance`` lets a replica recovering from
        # a checkpoint resume delivery just past the checkpointed prefix.
        self.decided: Dict[int, Any] = {}
        self.next_deliver = first_instance

        # Proposer / leader state.
        self.ballot: Ballot = (0, 0)
        self.is_leader = node_id == 0 and first_instance == 0
        self.preparing: Optional[Ballot] = None
        self._promises: Dict[int, Dict[int, Tuple[Ballot, Any]]] = {}
        self.next_instance = first_instance
        if stable_store is not None:
            self._restore(stable_store, first_instance)
        self.pending: Deque[Any] = deque()
        self._in_flight: Dict[int, _InFlight] = {}

        self._leader_tracker = TimeoutTracker()

    def _restore(self, store, first_instance: int) -> None:
        """Reload acceptor/learner state persisted by a previous life."""
        persisted = store.get("promised")
        if persisted is None:
            return  # fresh store: first boot, nothing to restore
        self.promised = persisted
        for key, value in store.items():
            if not isinstance(key, tuple):
                continue
            kind, instance = key
            if instance < first_instance:
                continue
            if kind == "accepted":
                self.accepted[instance] = value
            elif kind == "decided":
                self.decided[instance] = value
        self.ballot = max(self.ballot, self.promised)
        self.is_leader = False  # never resume leadership blindly

    def _persist_promised(self) -> None:
        if self._store is not None:
            self._store.put("promised", self.promised)

    def _persist_accepted(self, instance: int) -> None:
        if self._store is not None:
            self._store.put(("accepted", instance), self.accepted[instance])

    def _persist_decided(self, instance: int, value) -> None:
        if self._store is not None:
            self._store.put(("decided", instance), value)

    # ------------------------------------------------------------ lifecycle

    def start(self) -> List[Action]:
        """Arm the initial timers.  Call once before feeding events."""
        actions: List[Action] = [SetTimer(LEADER_TIMER, self.leader_timeout)]
        if self.is_leader:
            actions.append(SetTimer(HEARTBEAT_TIMER, self.heartbeat_interval))
        return actions

    # ---------------------------------------------------------------- client

    def submit(self, payload: Any) -> List[Action]:
        """A client payload arrived at this replica."""
        if self.is_leader:
            self.pending.append(payload)
            return self._propose_batches()
        return [Send(self.leader_hint(), Forward(payload))]

    def leader_hint(self) -> int:
        """The node this replica currently believes to be leader."""
        return self.ballot[1]

    # --------------------------------------------------------------- events

    def on_message(self, src: int, msg: Any) -> List[Action]:
        """Feed one received protocol message; returns resulting actions."""
        handler = self._HANDLERS[type(msg)]
        return handler(self, src, msg)

    def on_timer(self, name: str) -> List[Action]:
        """A timer armed via :class:`SetTimer` fired."""
        if name == HEARTBEAT_TIMER:
            return self._on_heartbeat_timer()
        if name == LEADER_TIMER:
            return self._on_leader_timer()
        raise ConfigurationError(f"unknown timer {name!r}")

    # ------------------------------------------------------------ proposing

    def _propose_batches(self) -> List[Action]:
        """Pack pending payloads into instances, up to the pipeline limit."""
        actions: List[Action] = []
        while self.pending and len(self._in_flight) < self.pipeline:
            batch = []
            while self.pending and len(batch) < self.batch_size:
                batch.append(self.pending.popleft())
            actions.extend(self._propose(self.next_instance, tuple(batch)))
            self.next_instance += 1
        return actions

    def _propose(self, instance: int, value: Any) -> List[Action]:
        """Phase 2a for one instance at the current ballot."""
        self._in_flight[instance] = _InFlight(value, {self.node_id})
        # The leader is also an acceptor; accept locally.
        self.promised = max(self.promised, self.ballot)
        self.accepted[instance] = (self.ballot, value)
        self._persist_promised()
        self._persist_accepted(instance)
        msg = Accept(self.ballot, instance, value)
        actions: List[Action] = [
            Send(peer, msg) for peer in range(self.n) if peer != self.node_id
        ]
        if self.quorum == 1:  # n == 1: decided immediately
            actions.extend(self._decide(instance, value))
        return actions

    def _decide(self, instance: int, value: Any) -> List[Action]:
        self._in_flight.pop(instance, None)
        msg = Decide(instance, value)
        actions: List[Action] = [
            Send(peer, msg) for peer in range(self.n) if peer != self.node_id
        ]
        actions.extend(self._learn(instance, value))
        return actions

    # ------------------------------------------------------------- learning

    def _learn(self, instance: int, value: Any) -> List[Action]:
        """Record a decision and deliver the contiguous decided prefix."""
        if instance in self.decided:
            return []
        self.decided[instance] = value
        self._persist_decided(instance, value)
        actions: List[Action] = []
        while self.next_deliver in self.decided:
            value = self.decided[self.next_deliver]
            if value != NOOP:
                actions.append(Deliver(self.next_deliver, value))
            self.next_deliver += 1
        return actions

    # ----------------------------------------------------- message handlers

    def _on_forward(self, src: int, msg: Forward) -> List[Action]:
        if self.is_leader:
            self.pending.append(msg.payload)
            return self._propose_batches()
        # Not the leader either: pass it along to our current hint, unless
        # that would bounce it straight back — or the hop budget is spent
        # (stale circular hints across >= 3 non-leaders would otherwise
        # relay the same Forward forever).  An exhausted payload is queued
        # locally: it is proposed if this node ever leads, and re-forwarded
        # by drain_pending_forwards once a real leader emerges.
        hint = self.leader_hint()
        if (hint != src and hint != self.node_id
                and msg.hops < FORWARD_HOP_LIMIT):
            return [Send(hint, Forward(msg.payload, msg.hops + 1))]
        self.pending.append(msg.payload)
        return []

    def _on_prepare(self, src: int, msg: Prepare) -> List[Action]:
        if msg.ballot > self.promised:
            self.promised = msg.ballot
            self._persist_promised()
            self._step_down(msg.ballot)
            undecided = {
                inst: acc
                for inst, acc in self.accepted.items()
                if inst not in self.decided
            }
            return [Send(src, Promise(msg.ballot, undecided))]
        return [Send(src, Nack(msg.ballot, self.promised))]

    def _on_promise(self, src: int, msg: Promise) -> List[Action]:
        if self.preparing is None or msg.ballot != self.preparing:
            return []
        self._promises[src] = msg.accepted
        if len(self._promises) < self.quorum:
            return []
        return self._become_leader()

    def _become_leader(self) -> List[Action]:
        """Phase 1 complete: re-propose constrained values, fill gaps."""
        ballot = self.preparing
        assert ballot is not None
        self.preparing = None
        self.ballot = ballot
        self.is_leader = True
        self._in_flight.clear()
        # Merge the quorum's accepted values (self included via _promises).
        constrained: Dict[int, Tuple[Ballot, Any]] = {}
        for accepted in self._promises.values():
            for inst, (acc_ballot, acc_value) in accepted.items():
                if inst not in constrained or acc_ballot > constrained[inst][0]:
                    constrained[inst] = (acc_ballot, acc_value)
        self._promises = {}
        horizon = max(
            [self.next_deliver] + [inst + 1 for inst in constrained]
            + [inst + 1 for inst in self.decided]
        )
        actions: List[Action] = []
        for inst in range(self.next_deliver, horizon):
            if inst in self.decided:
                continue
            if inst in constrained:
                actions.extend(self._propose(inst, constrained[inst][1]))
            else:
                actions.extend(self._propose(inst, NOOP))  # fill the gap
        self.next_instance = horizon
        actions.extend(self._propose_batches())
        actions.append(SetTimer(HEARTBEAT_TIMER, self.heartbeat_interval))
        return actions

    def _on_accept(self, src: int, msg: Accept) -> List[Action]:
        if msg.ballot >= self.promised:
            self.promised = msg.ballot
            if msg.ballot != self.ballot:
                self._step_down(msg.ballot)
            self._leader_tracker.record_activity()
            self.accepted[msg.instance] = (msg.ballot, msg.value)
            self._persist_promised()
            self._persist_accepted(msg.instance)
            return [Send(src, Accepted(msg.ballot, msg.instance))]
        return [Send(src, Nack(msg.ballot, self.promised))]

    def _on_accepted(self, src: int, msg: Accepted) -> List[Action]:
        if not self.is_leader or msg.ballot != self.ballot:
            return []
        entry = self._in_flight.get(msg.instance)
        if entry is None:
            return []
        entry.acks.add(src)
        if len(entry.acks) >= self.quorum:
            actions = self._decide(msg.instance, entry.value)
            actions.extend(self._propose_batches())
            return actions
        return []

    def _on_decide(self, src: int, msg: Decide) -> List[Action]:
        self._leader_tracker.record_activity()
        actions = self._learn(msg.instance, msg.value)
        if msg.instance > self.next_deliver:
            # There is a gap below this decision: ask the decider for it.
            actions.append(Send(src, CatchupRequest(self.next_deliver)))
        return actions

    def _on_nack(self, src: int, msg: Nack) -> List[Action]:
        if msg.promised > self.ballot:
            # Someone with a higher ballot is around; stop leading/preparing.
            self._step_down(msg.promised)
        return []

    def _on_catchup_request(self, src: int, msg: CatchupRequest) -> List[Action]:
        known = {
            inst: value
            for inst, value in self.decided.items()
            if inst >= msg.from_instance
        }
        if known:
            return [Send(src, CatchupReply(known))]
        return []

    def _on_catchup_reply(self, src: int, msg: CatchupReply) -> List[Action]:
        actions: List[Action] = []
        for inst in sorted(msg.decided):
            actions.extend(self._learn(inst, msg.decided[inst]))
        return actions

    def _on_heartbeat(self, src: int, msg: Heartbeat) -> List[Action]:
        actions: List[Action] = []
        if msg.ballot >= self.ballot:
            if msg.ballot > self.ballot:
                self._step_down(msg.ballot)
            self._leader_tracker.record_activity()
            if msg.decided_up_to > self.next_deliver:
                # Anti-entropy: a lagging or freshly recovered follower
                # pulls the decided prefix it is missing.
                actions.append(Send(src, CatchupRequest(self.next_deliver)))
        return actions

    _HANDLERS = {
        Forward: _on_forward,
        Prepare: _on_prepare,
        Promise: _on_promise,
        Accept: _on_accept,
        Accepted: _on_accepted,
        Decide: _on_decide,
        Nack: _on_nack,
        CatchupRequest: _on_catchup_request,
        CatchupReply: _on_catchup_reply,
        Heartbeat: _on_heartbeat,
    }

    # --------------------------------------------------------------- timers

    def _on_heartbeat_timer(self) -> List[Action]:
        if not self.is_leader:
            return []  # stepped down; stop beating
        msg = Heartbeat(self.ballot, self.next_deliver)
        actions: List[Action] = [
            Send(peer, msg) for peer in range(self.n) if peer != self.node_id
        ]
        # Retransmit in-flight proposals: a lost Accept/Accepted would
        # otherwise wedge its instance forever — later instances decide but
        # in-order delivery stalls at the gap.  Acceptors treat repeats
        # idempotently, so this is pure liveness.
        for instance, entry in self._in_flight.items():
            repeat = Accept(self.ballot, instance, entry.value)
            actions.extend(
                Send(peer, repeat)
                for peer in range(self.n)
                if peer != self.node_id and peer not in entry.acks
            )
        actions.append(SetTimer(HEARTBEAT_TIMER, self.heartbeat_interval))
        return actions

    def _on_leader_timer(self) -> List[Action]:
        actions: List[Action] = [SetTimer(LEADER_TIMER, self.leader_timeout)]
        if self.is_leader:
            return actions
        if self._leader_tracker.expired():
            actions.extend(self._campaign())
        return actions

    def _campaign(self) -> List[Action]:
        """Start phase 1 with a ballot above everything seen so far."""
        round_ = max(self.ballot[0], self.promised[0]) + 1
        ballot: Ballot = (round_, self.node_id)
        self.preparing = ballot
        self._promises = {}
        self.promised = ballot
        self._persist_promised()
        undecided = {
            inst: acc
            for inst, acc in self.accepted.items()
            if inst not in self.decided
        }
        actions: List[Action] = [
            Send(peer, Prepare(ballot))
            for peer in range(self.n)
            if peer != self.node_id
        ]
        # Self-promise.
        actions.extend(self._on_promise(self.node_id, Promise(ballot, undecided)))
        return actions

    # ---------------------------------------------------------------- misc

    def _step_down(self, ballot: Ballot) -> None:
        """Adopt a higher ballot observed from someone else."""
        if ballot <= self.ballot and not self.is_leader:
            return
        was_leader = self.is_leader
        self.ballot = max(self.ballot, ballot)
        self.is_leader = False
        if self.preparing is not None and ballot > self.preparing:
            self.preparing = None
        if was_leader:
            # Client payloads not yet proposed stay pending; re-forward them
            # so they are not lost if this node never leads again.
            self._leader_tracker.reset()

    def drain_pending_forwards(self) -> List[Action]:
        """Forward payloads stranded in ``pending`` after losing leadership."""
        if self.is_leader or not self.pending:
            return []
        hint = self.leader_hint()
        if hint == self.node_id:
            return []
        actions = [Send(hint, Forward(p)) for p in self.pending]
        self.pending.clear()
        return actions
