"""Multi-Paxos atomic broadcast as a pure state machine.

This is the ordering substrate standing in for BFT-SMaRt configured for
crash faults (paper §7.1): ``n = 2f + 1`` replicas, a stable leader that
batches client payloads into consensus instances, and delivery of decided
instances in instance order at every replica.

Design notes:

- **Pure state machine.**  Every input (``submit``, ``submit_read``,
  ``on_message``, ``on_timer``) returns a list of actions (:class:`Send`,
  :class:`Deliver`, :class:`DeliverRead`, :class:`SetTimer`); the protocol
  never touches the network or the clock directly — time is read through an
  injectable ``clock`` callable so simulated and model-checked runs stay
  deterministic.
- **Ballots** are ``(round, node_id)`` pairs; any node may campaign by
  picking a round above everything it has seen.  Node 0 starts as leader of
  ballot ``(0, 0)`` without a prepare phase, which is safe because every
  acceptor starts with ``promised < (0, 0)``.
- **Batching** (paper §7.1): the leader packs up to ``batch_size`` pending
  payloads into one instance, keeps at most ``pipeline`` instances in
  flight, and — when ``propose_linger > 0`` — lets a Nagle-style linger
  timer hold a sub-full batch open while earlier instances are in flight,
  so batches form from the arrival rate instead of only from backlog.
- **Cumulative acks** (``cumulative_acks``, on by default): ``Accepted``
  carries ``accepted_up_to`` so one ack covers a prefix of instances, and
  the ``Decide`` round is replaced by a ``commit_up_to`` frontier
  piggybacked on ``Accept`` and the heartbeat's ``decided_up_to`` —
  steady-state messages per decided batch drop from ~3(n-1) to ~2(n-1).
- **Leader leases** (``lease_duration``, on by default): followers grant
  the leader a lease with every heartbeat ack; while a quorum of grants is
  unexpired the leader serves read-only payloads locally via
  ``submit_read`` without a consensus round, and granters refuse to elect
  anyone else.  Safety needs only bounded clock-*rate* drift over one lease
  window (``lease_margin``); see docs/ordering.md for the argument.
- **Gaps** left by a leader change are filled with a no-op value that is
  never delivered to the application.
- **Catch-up**: a replica that sees a decision beyond its contiguous prefix
  asks the decider for the missing instances; replies are chunked to at
  most ``CATCHUP_CHUNK`` instances per frame.

Safety (agreement + total order) holds under message loss, duplication and
reordering and any number of suspicions; liveness additionally needs a
correct majority and eventually-timely leader communication, as usual.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.broadcast.failure_detector import (
    UNKNOWN_HOLDER,
    LeaseGrant,
    QuorumLease,
    TimeoutTracker,
)
from repro.broadcast.messages import (
    Accept,
    Accepted,
    Ballot,
    CatchupReply,
    CatchupRequest,
    Decide,
    Deliver,
    DeliverRead,
    Forward,
    Heartbeat,
    HeartbeatAck,
    Nack,
    Prepare,
    Promise,
    Send,
    SetTimer,
)
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY

__all__ = ["MultiPaxos", "NOOP", "FORWARD_HOP_LIMIT", "CATCHUP_CHUNK"]

#: Filler value proposed for gap instances after a leader change.  Never
#: delivered to the application.
NOOP = "__paxos_noop__"

#: Relays one Forward may take before the carrying node queues the payload
#: locally instead of chasing another stale leader hint.  Any value >= the
#: cluster size terminates a circular-hint cycle; generous slack keeps
#: legitimate multi-hop chases (hint chains during a leader change) alive.
FORWARD_HOP_LIMIT = 8

#: Max decided instances per CatchupReply: bounds the frame a recovering
#: replica pulls (one giant reply could blow transport frame limits or be
#: dropped whole by the drop-oldest outbound queues).  The requester
#: re-requests from its advanced ``next_deliver`` while ``more`` is set.
CATCHUP_CHUNK = 256

#: Timer names used with SetTimer.
HEARTBEAT_TIMER = "heartbeat"
LEADER_TIMER = "leader_check"
LINGER_TIMER = "propose_linger"

Action = Any


class _InFlight:
    """Leader-side bookkeeping for one undecided instance."""

    __slots__ = ("value", "acks")

    def __init__(self, value: Any, acks: Set[int]):
        self.value = value
        self.acks = acks


class MultiPaxos:
    """One replica's Multi-Paxos protocol state."""

    def __init__(
        self,
        node_id: int,
        n: int,
        batch_size: int = 64,
        pipeline: int = 32,
        heartbeat_interval: float = 0.05,
        leader_timeout: float = 0.2,
        first_instance: int = 0,
        stable_store=None,
        propose_linger: float = 0.0,
        cumulative_acks: bool = True,
        lease_duration: Optional[float] = None,
        lease_margin: Optional[float] = None,
        lease_reads: bool = True,
        clock: Optional[Callable[[], float]] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if n < 1 or n % 2 == 0:
            raise ConfigurationError(f"n must be odd and positive, got {n}")
        if not 0 <= node_id < n:
            raise ConfigurationError(f"node_id {node_id} out of range for n={n}")
        if batch_size < 1 or pipeline < 1:
            raise ConfigurationError("batch_size and pipeline must be >= 1")
        if propose_linger < 0:
            raise ConfigurationError("propose_linger must be >= 0")
        self.node_id = node_id
        self.n = n
        self.quorum = n // 2 + 1
        self.batch_size = batch_size
        self.pipeline = pipeline
        self.heartbeat_interval = heartbeat_interval
        self.leader_timeout = leader_timeout
        self.propose_linger = propose_linger
        self.cumulative_acks = cumulative_acks
        # Lease defaults: shorter than the leader timeout so a crashed
        # leader's lease expires before anyone could be elected anyway, and
        # a margin generous against clock-rate drift over one window.
        if lease_duration is None:
            lease_duration = 0.8 * leader_timeout
        if lease_duration < 0:
            raise ConfigurationError("lease_duration must be >= 0")
        if lease_margin is None:
            lease_margin = lease_duration / 8
        if not 0 <= lease_margin <= lease_duration or (
                lease_duration > 0 and lease_margin >= lease_duration):
            raise ConfigurationError(
                "lease_margin must satisfy 0 <= margin < duration")
        self.lease_duration = lease_duration
        self.lease_margin = lease_margin
        self.lease_reads = lease_reads
        self._clock: Callable[[], float] = (
            clock if clock is not None else time.monotonic)

        # Acceptor state (restored from stable storage when provided, so a
        # recovered replica never forgets a promise — see broadcast/storage).
        self._store = stable_store
        self.promised: Ballot = (-1, -1)
        self.accepted: Dict[int, Tuple[Ballot, Any]] = {}

        # Learner state.  ``first_instance`` lets a replica recovering from
        # a checkpoint resume delivery just past the checkpointed prefix.
        self.decided: Dict[int, Any] = {}
        self.next_deliver = first_instance

        # Proposer / leader state.
        self.ballot: Ballot = (0, 0)
        self.is_leader = node_id == 0 and first_instance == 0
        self.preparing: Optional[Ballot] = None
        self._promises: Dict[int, Dict[int, Tuple[Ballot, Any]]] = {}
        self.next_instance = first_instance

        # Lease state.  The follower side (_lease_grant) is the promise not
        # to elect anyone but the holder; the leader side (_quorum_lease)
        # aggregates heartbeat-ack grants.  _recover_floor guards lease
        # reads after an election: instances below it may have been decided
        # under an earlier ballot and executed elsewhere, so reads wait
        # until the local delivery frontier clears the recovery horizon.
        self._lease_grant = LeaseGrant()
        self._quorum_lease = QuorumLease(
            self.quorum, lease_duration, lease_margin)
        self._recover_floor = 0

        rejoining = first_instance > 0
        if stable_store is not None:
            rejoining = self._restore(stable_store, first_instance) or rejoining
        if rejoining and lease_duration > 0:
            # A rejoining replica cannot remember whom it granted a lease
            # before crashing (local clocks do not survive restarts), so it
            # sits out one full lease window before voting for anyone.
            self._lease_grant.grant(
                UNKNOWN_HOLDER, self._clock(), lease_duration)

        self.pending: Deque[Any] = deque()
        # Remaining Forward hop budget per pending payload, parallel to
        # ``pending`` (kept separate so ``pending`` stays a plain payload
        # queue for proposing and for introspection).
        self._pending_hops: Deque[int] = deque()
        self._in_flight: Dict[int, _InFlight] = {}
        self._linger_armed = False

        self._leader_tracker = TimeoutTracker()

        # Plain counters usable without obs wiring (benchmarks read them);
        # mirrored into the registry when one is attached.
        self.msgs_sent = 0
        self.instances_decided = 0
        self.lease_reads_served = 0
        obs = registry if registry is not None else NULL_REGISTRY
        self._obs_on = obs.enabled
        self._m_msgs = obs.counter("paxos_msgs_total")
        self._m_decided = obs.counter("paxos_decided_total")
        self._m_lease_reads = obs.counter("paxos_lease_reads_total")
        self._m_batch_fill = obs.histogram("paxos_batch_fill")
        self._g_msgs_per_decide = obs.gauge("paxos_msgs_per_decide")

    def _restore(self, store, first_instance: int) -> bool:
        """Reload acceptor/learner state persisted by a previous life.

        Returns True when prior state existed (i.e. this is a rejoin).
        """
        persisted = store.get("promised")
        if persisted is None:
            return False  # fresh store: first boot, nothing to restore
        self.promised = persisted
        for key, value in store.items():
            if not isinstance(key, tuple):
                continue
            kind, instance = key
            if instance < first_instance:
                continue
            if kind == "accepted":
                self.accepted[instance] = value
            elif kind == "decided":
                self.decided[instance] = value
        self.ballot = max(self.ballot, self.promised)
        self.is_leader = False  # never resume leadership blindly
        return True

    def _persist_promised(self) -> None:
        if self._store is not None:
            self._store.put("promised", self.promised)

    def _persist_accepted(self, instance: int) -> None:
        if self._store is not None:
            self._store.put(("accepted", instance), self.accepted[instance])

    def _persist_decided(self, instance: int, value) -> None:
        if self._store is not None:
            self._store.put(("decided", instance), value)

    # ------------------------------------------------------------ lifecycle

    def start(self) -> List[Action]:
        """Arm the initial timers.  Call once before feeding events."""
        actions: List[Action] = [SetTimer(LEADER_TIMER, self.leader_timeout)]
        if self.is_leader:
            actions.append(SetTimer(HEARTBEAT_TIMER, self.heartbeat_interval))
        return actions

    # ---------------------------------------------------------------- client

    def submit(self, payload: Any) -> List[Action]:
        """A client payload arrived at this replica."""
        if self.is_leader:
            self.pending.append(payload)
            self._pending_hops.append(0)
            return self._count(self._propose_batches())
        return self._count([Send(self.leader_hint(), Forward(payload))])

    def submit_read(self, payload: Any) -> List[Action]:
        """A read-only payload arrived: serve locally under the lease.

        While this node leads, holds a valid quorum lease, and has no
        recovery debt (every instance that might have been decided under an
        earlier ballot is delivered locally), the payload is handed straight
        to the application via :class:`DeliverRead` — no consensus round.
        Otherwise it falls back to the ordered path, which is always
        linearizable for reads too.
        """
        if (self.is_leader
                and self.lease_reads
                and self.lease_duration > 0
                and self.next_deliver >= self._recover_floor
                and self._lease_valid()):
            self.lease_reads_served += 1
            if self._obs_on:
                self._m_lease_reads.inc()
            return [DeliverRead(payload)]
        return self.submit(payload)

    def _lease_valid(self) -> bool:
        """Leader-side lease check (overridden by checker mutants)."""
        return self._quorum_lease.valid(self._clock())

    def leader_hint(self) -> int:
        """The node this replica currently believes to be leader."""
        return self.ballot[1]

    # --------------------------------------------------------------- events

    def on_message(self, src: int, msg: Any) -> List[Action]:
        """Feed one received protocol message; returns resulting actions."""
        handler = self._HANDLERS[type(msg)]
        return self._count(handler(self, src, msg))

    def on_timer(self, name: str) -> List[Action]:
        """A timer armed via :class:`SetTimer` fired."""
        if name == HEARTBEAT_TIMER:
            return self._count(self._on_heartbeat_timer())
        if name == LEADER_TIMER:
            return self._count(self._on_leader_timer())
        if name == LINGER_TIMER:
            return self._count(self._on_linger_timer())
        raise ConfigurationError(f"unknown timer {name!r}")

    def _count(self, actions: List[Action]) -> List[Action]:
        """Tally outgoing messages (plain counters + obs mirrors)."""
        sent = 0
        for action in actions:
            if type(action) is Send:
                sent += 1
        if sent:
            self.msgs_sent += sent
            if self._obs_on:
                self._m_msgs.inc(sent)
                if self.instances_decided:
                    self._g_msgs_per_decide.set(
                        self.msgs_sent / self.instances_decided)
        return actions

    # ------------------------------------------------------------ proposing

    def _propose_batches(self, force: bool = False) -> List[Action]:
        """Pack pending payloads into instances, up to the pipeline limit.

        With ``propose_linger > 0`` a Nagle-style rule applies: a sub-full
        batch is held back while earlier instances are in flight, and a
        linger timer proposes whatever accumulated when it fires.  When
        nothing is in flight the batch goes out immediately, so the linger
        never adds latency to an idle pipeline.
        """
        actions: List[Action] = []
        while self.pending and len(self._in_flight) < self.pipeline:
            if (not force
                    and self.propose_linger > 0
                    and self._in_flight
                    and len(self.pending) < self.batch_size):
                if not self._linger_armed:
                    self._linger_armed = True
                    actions.append(SetTimer(LINGER_TIMER, self.propose_linger))
                break
            batch = []
            while self.pending and len(batch) < self.batch_size:
                batch.append(self.pending.popleft())
                self._pending_hops.popleft()
            if self._obs_on:
                self._m_batch_fill.observe(len(batch))
            actions.extend(self._propose(self.next_instance, tuple(batch)))
            self.next_instance += 1
        return actions

    def _propose(self, instance: int, value: Any) -> List[Action]:
        """Phase 2a for one instance at the current ballot."""
        self._in_flight[instance] = _InFlight(value, {self.node_id})
        # The leader is also an acceptor; accept locally.
        self.promised = max(self.promised, self.ballot)
        self.accepted[instance] = (self.ballot, value)
        self._persist_promised()
        self._persist_accepted(instance)
        msg = Accept(self.ballot, instance, value, self._commit_up_to())
        actions: List[Action] = [
            Send(peer, msg) for peer in range(self.n) if peer != self.node_id
        ]
        if self.quorum == 1:  # n == 1: decided immediately
            actions.extend(self._decide(instance, value))
        return actions

    def _commit_up_to(self) -> int:
        """The decided frontier piggybacked on Accepts (cumulative mode)."""
        return self.next_deliver - 1 if self.cumulative_acks else -1

    def _decide(self, instance: int, value: Any) -> List[Action]:
        self._in_flight.pop(instance, None)
        self.instances_decided += 1
        if self._obs_on:
            self._m_decided.inc()
        actions: List[Action] = []
        if not self.cumulative_acks:
            # Per-instance learn round.  In cumulative mode followers learn
            # from commit_up_to on the next Accept or from the heartbeat
            # frontier instead — no dedicated Decide messages.
            msg = Decide(instance, value)
            actions.extend(
                Send(peer, msg) for peer in range(self.n)
                if peer != self.node_id
            )
        actions.extend(self._learn(instance, value))
        return actions

    # ------------------------------------------------------------- learning

    def _learn(self, instance: int, value: Any) -> List[Action]:
        """Record a decision and deliver the contiguous decided prefix."""
        if instance in self.decided:
            return []
        self.decided[instance] = value
        self._persist_decided(instance, value)
        # The accepted entry (and its stable-store key) is subsumed by the
        # decision; pruning here keeps both maps bounded by the in-flight
        # window instead of growing with history.
        self.accepted.pop(instance, None)
        if self._store is not None:
            self._store.delete(("accepted", instance))
        actions: List[Action] = []
        while self.next_deliver in self.decided:
            value = self.decided[self.next_deliver]
            if value != NOOP:
                actions.append(Deliver(self.next_deliver, value))
            self.next_deliver += 1
        return actions

    def _accepted_up_to(self) -> int:
        """Largest j with [next_deliver, j] all decided or accepted at the
        currently promised ballot — the cumulative-ack frontier."""
        j = self.next_deliver
        while True:
            if j in self.decided:
                j += 1
                continue
            acc = self.accepted.get(j)
            if acc is not None and acc[0] == self.promised:
                j += 1
                continue
            return j - 1

    def _learn_up_to(self, ballot: Ballot, up_to: int) -> List[Action]:
        """Learn locally-accepted instances the leader reports committed.

        Only instances accepted at exactly ``ballot`` qualify: the ballot's
        unique leader proposed one value per instance, and for instances it
        re-proposed constrained it proposed the previously decided value —
        so the locally accepted value equals the decided value.
        """
        if up_to < self.next_deliver:
            return []
        learnable = []
        for inst in range(self.next_deliver, up_to + 1):
            if inst in self.decided:
                continue
            acc = self.accepted.get(inst)
            if acc is not None and acc[0] == ballot:
                learnable.append((inst, acc[1]))
        actions: List[Action] = []
        for inst, value in learnable:
            actions.extend(self._learn(inst, value))
        return actions

    # ----------------------------------------------------- message handlers

    def _on_forward(self, src: int, msg: Forward) -> List[Action]:
        if self.is_leader:
            self.pending.append(msg.payload)
            self._pending_hops.append(msg.hops)
            return self._propose_batches()
        # Not the leader either: pass it along to our current hint, unless
        # that would bounce it straight back — or the hop budget is spent
        # (stale circular hints across >= 3 non-leaders would otherwise
        # relay the same Forward forever).  An exhausted payload is queued
        # locally: it is proposed if this node ever leads, and re-forwarded
        # by drain_pending_forwards once the leader hint changes.
        hint = self.leader_hint()
        if (hint != src and hint != self.node_id
                and msg.hops < FORWARD_HOP_LIMIT):
            return [Send(hint, Forward(msg.payload, msg.hops + 1))]
        self.pending.append(msg.payload)
        self._pending_hops.append(msg.hops)
        return []

    def _on_prepare(self, src: int, msg: Prepare) -> List[Action]:
        candidate = msg.ballot[1]
        if self.lease_duration > 0:
            now = self._clock()
            # A granter refuses to elect anyone but the current leaseholder
            # until the grant expires — this is what makes lease reads safe:
            # no new leader can form a quorum inside the old lease window.
            if self._lease_grant.blocks(candidate, now):
                return [Send(src, Nack(msg.ballot, self.promised))]
            # The leader itself is part of every lease quorum; while its
            # lease is valid it likewise withholds promises, so any
            # promise quorum must intersect the lease quorum in a blocker.
            if (self.is_leader and candidate != self.node_id
                    and self._quorum_lease.valid(now)):
                return [Send(src, Nack(msg.ballot, self.promised))]
        if msg.ballot > self.promised:
            self.promised = msg.ballot
            self._persist_promised()
            self._step_down(msg.ballot)
            report = {
                inst: acc
                for inst, acc in self.accepted.items()
                if inst not in self.decided
            }
            # Decided values at or above the candidate's frontier are
            # reported too, tagged with the promised ballot so they dominate
            # the constrained merge.  A decided instance may survive only
            # here (its accepted entry is pruned on learn) and be unknown to
            # every other quorum member; a candidate re-proposing a fresh
            # value at it would break agreement.
            for inst, value in self.decided.items():
                if inst >= msg.from_instance:
                    report[inst] = (msg.ballot, value)
            return [Send(src, Promise(msg.ballot, report))]
        return [Send(src, Nack(msg.ballot, self.promised))]

    def _on_promise(self, src: int, msg: Promise) -> List[Action]:
        if self.preparing is None or msg.ballot != self.preparing:
            return []
        self._promises[src] = msg.accepted
        if len(self._promises) < self.quorum:
            return []
        return self._become_leader()

    def _become_leader(self) -> List[Action]:
        """Phase 1 complete: re-propose constrained values, fill gaps."""
        ballot = self.preparing
        assert ballot is not None
        self.preparing = None
        self.ballot = ballot
        self.is_leader = True
        self._in_flight.clear()
        self._quorum_lease.reset()  # grants are per-ballot
        # Merge the quorum's accepted values (self included via _promises).
        constrained: Dict[int, Tuple[Ballot, Any]] = {}
        for accepted in self._promises.values():
            for inst, (acc_ballot, acc_value) in accepted.items():
                if inst not in constrained or acc_ballot > constrained[inst][0]:
                    constrained[inst] = (acc_ballot, acc_value)
        self._promises = {}
        horizon = max(
            [self.next_deliver] + [inst + 1 for inst in constrained]
            + [inst + 1 for inst in self.decided]
        )
        # Instances below the horizon may have been decided under an
        # earlier ballot and already executed at other replicas; lease
        # reads stay disabled until they are all delivered locally.
        self._recover_floor = horizon
        actions: List[Action] = []
        for inst in range(self.next_deliver, horizon):
            if inst in self.decided:
                continue
            if inst in constrained:
                actions.extend(self._propose(inst, constrained[inst][1]))
            else:
                actions.extend(self._propose(inst, NOOP))  # fill the gap
        self.next_instance = horizon
        actions.extend(self._propose_batches())
        actions.append(SetTimer(HEARTBEAT_TIMER, self.heartbeat_interval))
        return actions

    def _on_accept(self, src: int, msg: Accept) -> List[Action]:
        if msg.ballot >= self.promised:
            self.promised = msg.ballot
            if msg.ballot != self.ballot:
                self._step_down(msg.ballot)
            self._leader_tracker.record_activity()
            self.accepted[msg.instance] = (msg.ballot, msg.value)
            self._persist_promised()
            self._persist_accepted(msg.instance)
            actions: List[Action] = [
                Send(src, Accepted(msg.ballot, msg.instance,
                                   self._accepted_up_to()))
            ]
            if msg.commit_up_to >= self.next_deliver:
                actions.extend(self._learn_up_to(msg.ballot, msg.commit_up_to))
            return actions
        return [Send(src, Nack(msg.ballot, self.promised))]

    def _on_accepted(self, src: int, msg: Accepted) -> List[Action]:
        if not self.is_leader or msg.ballot != self.ballot:
            return []
        actions: List[Action] = []
        decided = self._record_acks(src, msg.instance, msg.accepted_up_to)
        for instance, value in decided:
            actions.extend(self._decide(instance, value))
        if decided:
            actions.extend(self._propose_batches())
        return actions

    def _record_acks(
        self, src: int, instance: int, accepted_up_to: int
    ) -> List[Tuple[int, Any]]:
        """Apply one (possibly cumulative) ack; return newly decided pairs."""
        covered = [instance] if instance in self._in_flight else []
        if self.cumulative_acks and accepted_up_to >= 0:
            covered.extend(
                inst for inst in self._in_flight
                if inst <= accepted_up_to and inst != instance
            )
        decided: List[Tuple[int, Any]] = []
        for inst in covered:
            entry = self._in_flight[inst]
            entry.acks.add(src)
            if len(entry.acks) >= self.quorum:
                decided.append((inst, entry.value))
        # Decide in instance order so delivery advances contiguously.
        return sorted(decided)

    def _on_decide(self, src: int, msg: Decide) -> List[Action]:
        self._leader_tracker.record_activity()
        actions = self._learn(msg.instance, msg.value)
        if msg.instance > self.next_deliver:
            # There is a gap below this decision: ask the decider for it.
            actions.append(Send(src, CatchupRequest(self.next_deliver)))
        return actions

    def _on_nack(self, src: int, msg: Nack) -> List[Action]:
        if msg.promised > self.ballot:
            # Someone with a higher ballot is around; stop leading/preparing.
            self._step_down(msg.promised)
        return []

    def _on_catchup_request(self, src: int, msg: CatchupRequest) -> List[Action]:
        known = sorted(
            inst for inst in self.decided if inst >= msg.from_instance
        )
        if not known:
            return []
        chunk = known[:CATCHUP_CHUNK]
        reply = CatchupReply(
            {inst: self.decided[inst] for inst in chunk},
            more=len(known) > len(chunk),
        )
        return [Send(src, reply)]

    def _on_catchup_reply(self, src: int, msg: CatchupReply) -> List[Action]:
        before = self.next_deliver
        actions: List[Action] = []
        for inst in sorted(msg.decided):
            actions.extend(self._learn(inst, msg.decided[inst]))
        if msg.more and self.next_deliver > before:
            # The sender has further chunks and this one advanced our
            # frontier: pull the next slice.  (No progress means the gap is
            # below the sender's chunk — re-requesting the same range would
            # loop; the heartbeat anti-entropy path retries instead.)
            actions.append(Send(src, CatchupRequest(self.next_deliver)))
        return actions

    def _on_heartbeat(self, src: int, msg: Heartbeat) -> List[Action]:
        actions: List[Action] = []
        if msg.ballot >= self.ballot:
            if msg.ballot > self.ballot:
                self._step_down(msg.ballot)
            self._leader_tracker.record_activity()
            if self.lease_duration > 0:
                # Grant (or refresh) the leader's lease and echo its clock
                # reading back so it can anchor the grant on its own clock.
                self._lease_grant.grant(
                    msg.ballot[1], self._clock(), self.lease_duration)
                actions.append(Send(src, HeartbeatAck(
                    msg.ballot, msg.sent_at, self._accepted_up_to())))
            # Learn locally-accepted instances below the leader's frontier
            # (the cumulative replacement for Decide), then pull anything
            # still missing.
            actions.extend(self._learn_up_to(msg.ballot, msg.decided_up_to - 1))
            if msg.decided_up_to > self.next_deliver:
                # Anti-entropy: a lagging or freshly recovered follower
                # pulls the decided prefix it is missing.
                actions.append(Send(src, CatchupRequest(self.next_deliver)))
        return actions

    def _on_heartbeat_ack(self, src: int, msg: HeartbeatAck) -> List[Action]:
        if not self.is_leader or msg.ballot != self.ballot:
            return []
        if self.lease_duration > 0:
            self._quorum_lease.record_ack(src, msg.sent_at)
        # The ack doubles as a cumulative ack, catching Accepts whose
        # original Accepted reply was lost.
        actions: List[Action] = []
        decided = self._record_acks(src, -1, msg.accepted_up_to)
        for instance, value in decided:
            actions.extend(self._decide(instance, value))
        if decided:
            actions.extend(self._propose_batches())
        return actions

    _HANDLERS = {
        Forward: _on_forward,
        Prepare: _on_prepare,
        Promise: _on_promise,
        Accept: _on_accept,
        Accepted: _on_accepted,
        Decide: _on_decide,
        Nack: _on_nack,
        CatchupRequest: _on_catchup_request,
        CatchupReply: _on_catchup_reply,
        Heartbeat: _on_heartbeat,
        HeartbeatAck: _on_heartbeat_ack,
    }

    # --------------------------------------------------------------- timers

    def _on_heartbeat_timer(self) -> List[Action]:
        if not self.is_leader:
            return []  # stepped down; stop beating
        msg = Heartbeat(self.ballot, self.next_deliver, self._clock())
        actions: List[Action] = [
            Send(peer, msg) for peer in range(self.n) if peer != self.node_id
        ]
        # Retransmit in-flight proposals: a lost Accept/Accepted would
        # otherwise wedge its instance forever — later instances decide but
        # in-order delivery stalls at the gap.  Acceptors treat repeats
        # idempotently, so this is pure liveness.
        commit_up_to = self._commit_up_to()
        for instance, entry in self._in_flight.items():
            repeat = Accept(self.ballot, instance, entry.value, commit_up_to)
            actions.extend(
                Send(peer, repeat)
                for peer in range(self.n)
                if peer != self.node_id and peer not in entry.acks
            )
        actions.append(SetTimer(HEARTBEAT_TIMER, self.heartbeat_interval))
        return actions

    def _on_leader_timer(self) -> List[Action]:
        actions: List[Action] = [SetTimer(LEADER_TIMER, self.leader_timeout)]
        if self.is_leader:
            return actions
        if self._leader_tracker.expired():
            if (self.lease_duration > 0
                    and self._lease_grant.blocks(self.node_id, self._clock())):
                # An unexpired grant forbids campaigning: the granter would
                # refuse to elect us anyway, and spurious duels under load
                # are exactly what the lease suppresses.
                return actions
            actions.extend(self._campaign())
        return actions

    def _on_linger_timer(self) -> List[Action]:
        self._linger_armed = False
        if not self.is_leader:
            return []
        return self._propose_batches(force=True)

    def _campaign(self) -> List[Action]:
        """Start phase 1 with a ballot above everything seen so far."""
        round_ = max(self.ballot[0], self.promised[0]) + 1
        ballot: Ballot = (round_, self.node_id)
        self.preparing = ballot
        self._promises = {}
        self.promised = ballot
        self._persist_promised()
        undecided = {
            inst: acc
            for inst, acc in self.accepted.items()
            if inst not in self.decided
        }
        actions: List[Action] = [
            Send(peer, Prepare(ballot, self.next_deliver))
            for peer in range(self.n)
            if peer != self.node_id
        ]
        # Self-promise.
        actions.extend(self._on_promise(self.node_id, Promise(ballot, undecided)))
        return actions

    # ---------------------------------------------------------------- misc

    def _step_down(self, ballot: Ballot) -> None:
        """Adopt a higher ballot observed from someone else."""
        if ballot <= self.ballot and not self.is_leader:
            return
        was_leader = self.is_leader
        self.ballot = max(self.ballot, ballot)
        self.is_leader = False
        self._quorum_lease.reset()
        if self.preparing is not None and ballot > self.preparing:
            self.preparing = None
        if was_leader:
            # Client payloads not yet proposed stay pending; re-forward them
            # so they are not lost if this node never leads again.
            self._leader_tracker.reset()

    def drain_pending_forwards(self) -> List[Action]:
        """Forward payloads stranded in ``pending`` toward the current hint.

        Called by adapters on losing leadership *and* whenever the observed
        leader hint changes while following (a never-leader node can hold
        hop-exhausted payloads too).  Each payload keeps its consumed hop
        budget: a re-forward is one more hop of the same chase, not a fresh
        orbit — re-emitting with ``hops=0`` would defeat FORWARD_HOP_LIMIT
        under leader churn.
        """
        if self.is_leader or not self.pending:
            return []
        hint = self.leader_hint()
        if hint == self.node_id:
            return []
        actions = self._count([
            Send(hint, Forward(payload, hops))
            for payload, hops in zip(self.pending, self._pending_hops)
        ])
        self.pending.clear()
        self._pending_hops.clear()
        return actions
