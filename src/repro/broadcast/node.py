"""Threaded event-loop adapter for broadcast protocol state machines.

A :class:`ThreadedNode` owns one protocol state machine (MultiPaxos or
SequencerBroadcast), consumes its transport inbox on a dedicated thread, and
performs the actions the state machine returns: sends go to the transport,
delivers go to the application callback, timers are kept in a local heap.

The state machine is only ever touched from the event-loop thread, so it
needs no internal locking; ``submit`` is made thread-safe by routing client
payloads through the inbox.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import threading
import time
from typing import Any, Callable, List, Optional, Tuple

from repro.broadcast.messages import (
    Deliver,
    DeliverOptimistic,
    DeliverRead,
    Send,
    SetTimer,
)
from repro.broadcast.transport import ThreadedTransport
from repro.errors import ShutdownError

__all__ = ["ThreadedNode"]

_SUBMIT = object()       # inbox sentinel: client payload
_SUBMIT_READ = object()  # inbox sentinel: read-only client payload
_STOP = object()         # inbox sentinel: shut down

DeliverCallback = Callable[[int, Any], None]
ReadCallback = Callable[[Any], None]
OptimisticCallback = Callable[[Any], None]


class ThreadedNode:
    """Runs a protocol state machine on its own thread."""

    def __init__(
        self,
        node_id: int,
        protocol: Any,
        transport: ThreadedTransport,
        on_deliver: DeliverCallback,
        name: Optional[str] = None,
        on_read: Optional[ReadCallback] = None,
        on_optimistic: Optional[OptimisticCallback] = None,
    ):
        self.node_id = node_id
        self.protocol = protocol
        self._transport = transport
        self._on_deliver = on_deliver
        self._on_read = on_read
        self._on_optimistic = on_optimistic
        self._inbox = transport.inbox(node_id)
        self._timers: List[Tuple[float, int, str]] = []
        self._timer_seq = itertools.count()
        self._was_leader = False
        self._last_hint: Optional[int] = None
        self._stopped = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=name or f"node-{node_id}", daemon=True
        )

    # ------------------------------------------------------------------ API

    def start(self) -> None:
        self._thread.start()

    def submit(self, payload: Any) -> None:
        """Hand a client payload to the protocol (thread-safe)."""
        if self._stopped.is_set():
            raise ShutdownError(f"node {self.node_id} is stopped")
        self._inbox.put((_SUBMIT, payload))

    def submit_read(self, payload: Any) -> None:
        """Hand a read-only payload to the protocol (thread-safe).

        Eligible for the leaseholder's local fast path; falls back to the
        ordered path when the protocol has no read support or no read
        callback was wired.
        """
        if self._stopped.is_set():
            raise ShutdownError(f"node {self.node_id} is stopped")
        self._inbox.put((_SUBMIT_READ, payload))

    def stop(self) -> None:
        """Stop the event loop; idempotent."""
        if not self._stopped.is_set():
            self._stopped.set()
            self._inbox.put((_STOP, None))

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout)

    @property
    def running(self) -> bool:
        return self._thread.is_alive()

    # ----------------------------------------------------------- event loop

    def _run(self) -> None:
        self._step(self.protocol.start())
        while True:
            timeout = self._until_next_timer()
            try:
                src, msg = self._inbox.get(timeout=timeout)
            except queue.Empty:
                self._fire_due_timers()
                continue
            if src is _STOP:
                return
            if self._stopped.is_set():
                return
            if src is _SUBMIT:
                self._step(self.protocol.submit(msg))
            elif src is _SUBMIT_READ:
                self._step(self._submit_read_actions(msg))
            else:
                self._step(self.protocol.on_message(src, msg))
            self._fire_due_timers()

    def _submit_read_actions(self, payload: Any) -> List[Any]:
        submit_read = getattr(self.protocol, "submit_read", None)
        if submit_read is None or self._on_read is None:
            return self.protocol.submit(payload)
        return submit_read(payload)

    def _until_next_timer(self) -> Optional[float]:
        if not self._timers:
            return None
        return max(0.0, self._timers[0][0] - time.monotonic())

    def _fire_due_timers(self) -> None:
        now = time.monotonic()
        while self._timers and self._timers[0][0] <= now:
            _, _, timer_name = heapq.heappop(self._timers)
            self._step(self.protocol.on_timer(timer_name))

    def _step(self, actions: List[Any]) -> None:
        """Perform one protocol call's actions, then watch for step-down.

        Losing leadership — or, on a node that never led, learning of a new
        leader — strands any not-yet-proposed client payloads in the
        protocol's ``pending`` queue: nothing would ever re-forward them to
        the new leader (clients only recover by retrying into a timeout).
        Draining on the observed was-leader → follower transition and on
        every observed leader-hint change re-forwards them exactly once per
        new information, without re-triggering on every event (which could
        recirculate hop-exhausted payloads forever); the payloads carry
        their consumed hop budget, so even repeated hint churn is bounded.
        """
        self._perform(actions)
        is_leader = bool(getattr(self.protocol, "is_leader", False))
        hint_of = getattr(self.protocol, "leader_hint", None)
        hint = hint_of() if hint_of is not None else None
        stepped_down = self._was_leader and not is_leader
        hint_changed = (
            not is_leader
            and hint is not None
            and self._last_hint is not None
            and hint != self._last_hint
        )
        if stepped_down or hint_changed:
            drain = getattr(self.protocol, "drain_pending_forwards", None)
            if drain is not None:
                self._perform(drain())
        self._was_leader = is_leader
        self._last_hint = hint

    def _perform(self, actions: List[Any]) -> None:
        for action in actions:
            kind = type(action)
            if kind is Send:
                self._transport.send(self.node_id, action.dst, action.msg)
            elif kind is Deliver:
                self._on_deliver(action.instance, action.payload)
            elif kind is DeliverRead:
                if self._on_read is None:  # pragma: no cover - defensive
                    raise TypeError(
                        "protocol emitted DeliverRead but no on_read "
                        "callback is wired")
                self._on_read(action.payload)
            elif kind is DeliverOptimistic:
                # An optimistic delivery is advisory: a node without a
                # speculative consumer simply waits for the conservative
                # delivery of the same payload.
                if self._on_optimistic is not None:
                    self._on_optimistic(action.payload)
            elif kind is SetTimer:
                heapq.heappush(
                    self._timers,
                    (
                        time.monotonic() + action.delay,
                        next(self._timer_seq),
                        action.name,
                    ),
                )
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown protocol action {action!r}")
