"""Protocol messages and actions for the atomic-broadcast layer.

The broadcast protocols are *pure state machines*: handling an event returns
a list of :class:`Action` objects (messages to send, payloads to deliver,
timers to arm) and never touches a socket or a clock directly.  Adapters —
:class:`~repro.broadcast.node.ThreadedNode` for OS threads and the simulated
cluster in :mod:`repro.smr.sim_cluster` — perform the actions.  This style
keeps the protocol logic identical across execution environments and makes
it property-testable under adversarial schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

__all__ = [
    "Ballot",
    "Send",
    "Deliver",
    "DeliverRead",
    "SetTimer",
    "Prepare",
    "Promise",
    "Accept",
    "Accepted",
    "Decide",
    "Nack",
    "CatchupRequest",
    "CatchupReply",
    "Forward",
    "Heartbeat",
    "HeartbeatAck",
    "SequencerStamp",
    "DeliverOptimistic",
    "OptimisticAnnounce",
    "NewEpoch",
]

# A ballot is (round, node_id); tuple comparison gives the total order and
# ``round % n`` is irrelevant — the node_id component breaks ties, and any
# node can try to lead by picking a higher round.
Ballot = Tuple[int, int]


# --------------------------------------------------------------------- actions


@dataclass(frozen=True)
class Send:
    """Send ``msg`` to node ``dst`` (point-to-point)."""

    dst: int
    msg: Any


@dataclass(frozen=True)
class Deliver:
    """Deliver ``payload`` as the ``instance``-th atomic-broadcast message."""

    instance: int
    payload: Any


@dataclass(frozen=True)
class DeliverRead:
    """Serve ``payload`` as a leaseholder-local read, outside the total order.

    Emitted only by ``MultiPaxos.submit_read`` while the node holds a valid
    quorum lease: the payload is executed against the local state without a
    consensus round and is never assigned an instance number.
    """

    payload: Any


@dataclass(frozen=True)
class DeliverOptimistic:
    """Deliver ``payload`` optimistically, before its final order is known.

    Emitted by ordering protocols with an optimistic fast path
    (:class:`~repro.broadcast.sequencer.SequencerBroadcast` in optimistic
    mode): the payload will *also* be delivered conservatively via
    :class:`Deliver` later, in the authoritative order.  Consumers
    (:class:`~repro.spec.replica.SpeculativeReplica`) execute
    speculatively and withhold responses until the conservative delivery
    confirms or contradicts the guess.
    """

    payload: Any


@dataclass(frozen=True)
class SetTimer:
    """Ask the adapter to call ``on_timer(name)`` after ``delay`` seconds."""

    name: str
    delay: float


# -------------------------------------------------------------- paxos messages


@dataclass(frozen=True)
class Prepare:
    """Phase-1a: a would-be leader asks acceptors to promise ``ballot``.

    ``from_instance`` is the candidate's delivery frontier: acceptors
    report their decided values at or above it in the Promise, so the new
    leader cannot re-propose a fresh value at an instance that was already
    decided (and possibly executed) elsewhere.
    """

    ballot: Ballot
    from_instance: int = 0


@dataclass(frozen=True)
class Promise:
    """Phase-1b: acceptor promises ``ballot``.

    ``accepted`` carries, per undecided instance, the highest-ballot value
    this acceptor has accepted, which the new leader must re-propose; plus,
    tagged with the promised ballot itself, the acceptor's *decided* values
    at or above the candidate's ``from_instance`` frontier (a decided
    instance may survive only in the ``decided`` map — the accepted entry
    is pruned on learn — and may be known to no other quorum member).
    """

    ballot: Ballot
    accepted: Dict[int, Tuple[Ballot, Any]] = field(default_factory=dict)


@dataclass(frozen=True)
class Accept:
    """Phase-2a: the leader proposes ``value`` for ``instance`` at ``ballot``.

    ``commit_up_to`` piggybacks the leader's decided frontier (the largest
    instance below which everything is decided): a follower that accepted
    instances in that prefix at the same ballot learns them without a
    separate ``Decide`` round (cumulative-ack mode).  ``-1`` means "no
    frontier information".
    """

    ballot: Ballot
    instance: int
    value: Any
    commit_up_to: int = -1


@dataclass(frozen=True)
class Accepted:
    """Phase-2b: acceptor accepted ``value`` for ``instance`` at ``ballot``.

    ``accepted_up_to`` is cumulative: every instance up to and including it
    is decided or accepted at this ballot on the sender, so one ack can
    cover a whole batch window of instances.  ``-1`` means "no cumulative
    information" (pre-fastpath peers).
    """

    ballot: Ballot
    instance: int
    accepted_up_to: int = -1


@dataclass(frozen=True)
class Decide:
    """Learn message: ``instance`` is decided with ``value``."""

    instance: int
    value: Any


@dataclass(frozen=True)
class Nack:
    """Acceptor rejected a ballot; carries the ballot it promised instead."""

    ballot: Ballot
    promised: Ballot


@dataclass(frozen=True)
class CatchupRequest:
    """Ask a peer for decided instances starting at ``from_instance``."""

    from_instance: int


@dataclass(frozen=True)
class CatchupReply:
    """Decided instances a peer was missing.

    Replies are chunked (``CATCHUP_CHUNK`` instances max) so a replica
    pulling a long prefix never receives one giant frame; ``more`` tells the
    requester to re-request from its new ``next_deliver``.
    """

    decided: Dict[int, Any]
    more: bool = False


@dataclass(frozen=True)
class Forward:
    """A non-leader forwards a client payload to the current leader.

    ``hops`` counts relays so far: with three or more non-leaders holding
    stale circular leader hints, a Forward could otherwise orbit the
    cluster forever.  A relay re-sends with ``hops + 1``; a node whose
    budget is exhausted queues the payload locally instead (see
    ``MultiPaxos._on_forward``).
    """

    payload: Any
    hops: int = 0


@dataclass(frozen=True)
class Heartbeat:
    """Leader liveness beacon consumed by the failure detector.

    Also carries the leader's contiguous delivery frontier so lagging or
    freshly recovered followers can request a catch-up (anti-entropy).
    ``sent_at`` is the leader's local clock reading at send time; followers
    echo it in :class:`HeartbeatAck` so the leader can compute its lease
    expiry purely on its own clock (no cross-node clock comparison).
    """

    ballot: Ballot
    decided_up_to: int = 0
    sent_at: float = 0.0


@dataclass(frozen=True)
class HeartbeatAck:
    """Follower response to a :class:`Heartbeat`: lease grant + cumulative ack.

    ``sent_at`` echoes the heartbeat's leader-clock timestamp (the grant is
    anchored there on the leader's clock); ``accepted_up_to`` doubles as a
    cumulative acknowledgement so heartbeat-retransmitted ``Accept``s are
    acked even when the original ``Accepted`` was lost.
    """

    ballot: Ballot
    sent_at: float
    accepted_up_to: int = -1


# ---------------------------------------------------------- sequencer messages


@dataclass(frozen=True)
class SequencerStamp:
    """Sequencer-assigned total-order position for ``payload``.

    ``epoch`` identifies the sequencer regime that assigned ``seq``
    (incremented by every :class:`NewEpoch`).  A stamp from a deposed
    sequencer is accepted only for positions *below* the new epoch's base
    — the prefix both regimes agree on; at or above the base it is
    discarded, because the new sequencer re-stamps those payloads (see
    ``SequencerBroadcast._learn``).  Wire default 0 keeps pre-failover
    frames decodable.
    """

    seq: int
    payload: Any
    epoch: int = 0


@dataclass(frozen=True)
class OptimisticAnnounce:
    """Optimistic-order announcement of ``payload`` at submission time.

    Sent by the submitting node to every peer (and self-delivered) the
    moment a payload enters the system, one network hop before the
    sequencer's stamp can arrive: receivers treat arrival order as the
    *guessed* total order and may begin executing speculatively.  The
    guess is confirmed or corrected by the stamped (conservative)
    delivery of the same payload.
    """

    payload: Any


@dataclass(frozen=True)
class NewEpoch:
    """A node took over sequencing: ``epoch`` begins at position ``base``.

    ``sequencer`` is the node now stamping; ``base`` is its delivery
    frontier at promotion — every position below ``base`` is final under
    earlier epochs, every position at or above it will be (re-)stamped in
    ``epoch``.  Receivers drop pending old-epoch stamps at or above
    ``base`` (the deposed sequencer's stamps for those positions are
    void) and re-forward their own unconfirmed submissions to the new
    sequencer.
    """

    epoch: int
    sequencer: int
    base: int
