"""Protocol messages and actions for the atomic-broadcast layer.

The broadcast protocols are *pure state machines*: handling an event returns
a list of :class:`Action` objects (messages to send, payloads to deliver,
timers to arm) and never touches a socket or a clock directly.  Adapters —
:class:`~repro.broadcast.node.ThreadedNode` for OS threads and the simulated
cluster in :mod:`repro.smr.sim_cluster` — perform the actions.  This style
keeps the protocol logic identical across execution environments and makes
it property-testable under adversarial schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

__all__ = [
    "Ballot",
    "Send",
    "Deliver",
    "SetTimer",
    "Prepare",
    "Promise",
    "Accept",
    "Accepted",
    "Decide",
    "Nack",
    "CatchupRequest",
    "CatchupReply",
    "Forward",
    "Heartbeat",
    "SequencerStamp",
]

# A ballot is (round, node_id); tuple comparison gives the total order and
# ``round % n`` is irrelevant — the node_id component breaks ties, and any
# node can try to lead by picking a higher round.
Ballot = Tuple[int, int]


# --------------------------------------------------------------------- actions


@dataclass(frozen=True)
class Send:
    """Send ``msg`` to node ``dst`` (point-to-point)."""

    dst: int
    msg: Any


@dataclass(frozen=True)
class Deliver:
    """Deliver ``payload`` as the ``instance``-th atomic-broadcast message."""

    instance: int
    payload: Any


@dataclass(frozen=True)
class SetTimer:
    """Ask the adapter to call ``on_timer(name)`` after ``delay`` seconds."""

    name: str
    delay: float


# -------------------------------------------------------------- paxos messages


@dataclass(frozen=True)
class Prepare:
    """Phase-1a: a would-be leader asks acceptors to promise ``ballot``."""

    ballot: Ballot


@dataclass(frozen=True)
class Promise:
    """Phase-1b: acceptor promises ``ballot``.

    ``accepted`` carries, per undecided instance, the highest-ballot value
    this acceptor has accepted, which the new leader must re-propose.
    """

    ballot: Ballot
    accepted: Dict[int, Tuple[Ballot, Any]] = field(default_factory=dict)


@dataclass(frozen=True)
class Accept:
    """Phase-2a: the leader proposes ``value`` for ``instance`` at ``ballot``."""

    ballot: Ballot
    instance: int
    value: Any


@dataclass(frozen=True)
class Accepted:
    """Phase-2b: acceptor accepted ``value`` for ``instance`` at ``ballot``."""

    ballot: Ballot
    instance: int


@dataclass(frozen=True)
class Decide:
    """Learn message: ``instance`` is decided with ``value``."""

    instance: int
    value: Any


@dataclass(frozen=True)
class Nack:
    """Acceptor rejected a ballot; carries the ballot it promised instead."""

    ballot: Ballot
    promised: Ballot


@dataclass(frozen=True)
class CatchupRequest:
    """Ask a peer for decided instances starting at ``from_instance``."""

    from_instance: int


@dataclass(frozen=True)
class CatchupReply:
    """Decided instances a peer was missing."""

    decided: Dict[int, Any]


@dataclass(frozen=True)
class Forward:
    """A non-leader forwards a client payload to the current leader.

    ``hops`` counts relays so far: with three or more non-leaders holding
    stale circular leader hints, a Forward could otherwise orbit the
    cluster forever.  A relay re-sends with ``hops + 1``; a node whose
    budget is exhausted queues the payload locally instead (see
    ``MultiPaxos._on_forward``).
    """

    payload: Any
    hops: int = 0


@dataclass(frozen=True)
class Heartbeat:
    """Leader liveness beacon consumed by the failure detector.

    Also carries the leader's contiguous delivery frontier so lagging or
    freshly recovered followers can request a catch-up (anti-entropy).
    """

    ballot: Ballot
    decided_up_to: int = 0


# ---------------------------------------------------------- sequencer messages


@dataclass(frozen=True)
class SequencerStamp:
    """Sequencer-assigned total-order position for ``payload``."""

    seq: int
    payload: Any
