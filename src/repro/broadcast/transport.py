"""In-memory message transport with fault injection.

Connects protocol nodes within one process.  Message passing is one-to-one
(the system model's ``send``/``receive``); the transport can inject
per-link delay, probabilistic loss, duplication, and partitions, all driven
by a seeded RNG so failure scenarios replay deterministically.

Two drivers share this configuration:

- :class:`ThreadedTransport` — delivers through per-node queues consumed by
  :class:`~repro.broadcast.node.ThreadedNode` event loops.
- The simulated cluster (:mod:`repro.smr.sim_cluster`) reuses
  :class:`FaultPlan` to decide the fate of each message on the virtual clock.
"""

from __future__ import annotations

import queue
import random
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError, ShutdownError

__all__ = ["FaultPlan", "LinkFate", "ThreadedTransport"]


@dataclass(frozen=True)
class LinkFate:
    """What happens to one message: ``copies`` deliveries after ``delays``."""

    copies: int
    delays: Tuple[float, ...]


class FaultPlan:
    """Seeded fault-injection policy shared by both transport drivers."""

    def __init__(
        self,
        seed: int = 0,
        min_delay: float = 50e-6,
        max_delay: float = 150e-6,
        loss: float = 0.0,
        duplication: float = 0.0,
    ):
        if not 0 <= loss < 1:
            raise ConfigurationError(f"loss must be in [0, 1), got {loss}")
        if not 0 <= duplication < 1:
            raise ConfigurationError(
                f"duplication must be in [0, 1), got {duplication}"
            )
        if min_delay < 0 or max_delay < min_delay:
            raise ConfigurationError(
                f"need 0 <= min_delay <= max_delay, got [{min_delay}, {max_delay}]"
            )
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self.min_delay = min_delay
        self.max_delay = max_delay
        self.loss = loss
        self.duplication = duplication
        self._partitioned: Set[frozenset] = set()

    # ------------------------------------------------------------ partitions

    def partition(self, a: int, b: int) -> None:
        """Cut the (bidirectional) link between nodes ``a`` and ``b``."""
        self._partitioned.add(frozenset((a, b)))

    def heal(self, a: int, b: int) -> None:
        """Restore the link between ``a`` and ``b``."""
        self._partitioned.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        self._partitioned.clear()

    def is_partitioned(self, a: int, b: int) -> bool:
        return frozenset((a, b)) in self._partitioned

    # ---------------------------------------------------------------- policy

    def fate(self, src: int, dst: int) -> LinkFate:
        """Decide the fate of one message from ``src`` to ``dst``.

        Thread-safe: concurrent senders draw whole fates atomically, so the
        RNG stream is consumed in fate-sized chunks and the multiset of
        fates produced equals a serial run with the same seed.  The
        *assignment* of fates to links still depends on cross-thread call
        order, so exact replay of a threaded run is not guaranteed — use
        the simulated cluster (:mod:`repro.smr.sim_cluster`) when a
        bit-exact failure replay is needed.
        """
        if self.is_partitioned(src, dst):
            return LinkFate(0, ())
        with self._rng_lock:
            rng = self._rng
            if self.loss and rng.random() < self.loss:
                return LinkFate(0, ())
            copies = 1
            if self.duplication and rng.random() < self.duplication:
                copies = 2
            delays = tuple(
                rng.uniform(self.min_delay, self.max_delay)
                for _ in range(copies)
            )
        return LinkFate(copies, delays)


class ThreadedTransport:
    """Queue-based transport for threaded deployments.

    Each node owns an inbox; ``send`` applies the fault plan and enqueues
    ``(src, msg)`` into the destination inbox.  Delays are implemented with
    ``threading.Timer`` so they do not block the sender.
    """

    def __init__(self, n: int, plan: Optional[FaultPlan] = None):
        if n < 1:
            raise ConfigurationError(f"n must be positive, got {n}")
        self.n = n
        self.plan = plan or FaultPlan()
        self._inboxes: List["queue.Queue[Tuple[int, Any]]"] = [
            queue.Queue() for _ in range(n)
        ]
        self._crashed: Set[int] = set()
        self._closed = False
        self._timers: List[threading.Timer] = []
        self._lock = threading.Lock()

    def inbox(self, node_id: int) -> "queue.Queue[Tuple[int, Any]]":
        return self._inboxes[node_id]

    def crash(self, node_id: int) -> None:
        """Drop all traffic to and from ``node_id`` (crash-stop model)."""
        self._crashed.add(node_id)

    def recover(self, node_id: int) -> None:
        self._crashed.discard(node_id)

    def reset_inbox(self, node_id: int) -> None:
        """Replace a node's inbox with a fresh queue.

        Used when a crashed node is rebuilt: the old queue may hold stale
        pre-crash messages or the old event loop's stop sentinel.
        """
        self._inboxes[node_id] = queue.Queue()

    def is_crashed(self, node_id: int) -> bool:
        return node_id in self._crashed

    def send(self, src: int, dst: int, msg: Any) -> None:
        if self._closed:
            raise ShutdownError("transport is closed")
        if src in self._crashed or dst in self._crashed:
            return
        fate = self.plan.fate(src, dst)
        for delay in fate.delays:
            if delay <= 0:
                self._inboxes[dst].put((src, msg))
                continue
            self._schedule_late(delay, src, dst, msg)

    def _schedule_late(self, delay: float, src: int, dst: int,
                       msg: Any) -> None:
        timer = threading.Timer(
            delay, lambda: self._deliver_late(timer, src, dst, msg)
        )
        timer.daemon = True
        with self._lock:
            self._timers.append(timer)
        timer.start()

    def _deliver_late(self, timer: threading.Timer, src: int, dst: int,
                      msg: Any) -> None:
        # Prune the fired timer immediately; keeping every timer until
        # close() grows without bound in long-running clusters.
        with self._lock:
            try:
                self._timers.remove(timer)
            except ValueError:
                pass  # close() raced us and already reaped it
        if self._closed or dst in self._crashed or src in self._crashed:
            return
        self._inboxes[dst].put((src, msg))

    def close(self) -> None:
        """Stop delivering; cancel outstanding delayed messages."""
        self._closed = True
        with self._lock:
            timers, self._timers = self._timers, []
        for timer in timers:
            timer.cancel()
