"""Stable storage for acceptor state (crash-recovery support).

Plain crash-stop tolerance needs no persistence, but letting a crashed
replica *rejoin* does: an acceptor that forgets its promises could vote
twice and break agreement.  :class:`MultiPaxos` therefore accepts an
optional write-through store for ``promised`` / ``accepted`` / ``decided``;
on restart the protocol is rebuilt from the store and can safely
participate again.

:class:`InMemoryStableStore` keeps the data in a process-global dict keyed
by node id — it survives the *simulated* crash of a node object, standing
in for the fsync'd write-ahead log a production deployment would use (the
values are kept as Python objects; a durable implementation would
serialize them).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

__all__ = ["StableStore", "InMemoryStableStore"]


class StableStore:
    """Write-through key/value store interface used by the acceptor."""

    def put(self, key: Any, value: Any) -> None:
        raise NotImplementedError

    def get(self, key: Any, default: Any = None) -> Any:
        raise NotImplementedError

    def delete(self, key: Any) -> None:
        """Remove ``key`` if present (no-op otherwise).

        Used to prune ``("accepted", instance)`` entries once the instance
        is decided — without it the store grows without bound.
        """
        raise NotImplementedError

    def items(self) -> Iterator[Tuple[Any, Any]]:
        raise NotImplementedError


class InMemoryStableStore(StableStore):
    """Dict-backed store that survives node-object destruction."""

    def __init__(self, backing: Optional[Dict[Any, Any]] = None):
        self._data: Dict[Any, Any] = backing if backing is not None else {}

    def put(self, key: Any, value: Any) -> None:
        self._data[key] = value

    def delete(self, key: Any) -> None:
        self._data.pop(key, None)

    def get(self, key: Any, default: Any = None) -> Any:
        return self._data.get(key, default)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return iter(list(self._data.items()))

    def __len__(self) -> int:
        return len(self._data)
