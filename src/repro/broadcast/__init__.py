"""Atomic broadcast substrate (BFT-SMaRt stand-in, crash model).

Pure protocol state machines (:class:`MultiPaxos`, fault tolerant;
:class:`SequencerBroadcast`, fast path), an in-memory transport with fault
injection, and a threaded event-loop adapter.
"""

from repro.broadcast.failure_detector import (
    LeaseGrant,
    QuorumLease,
    TimeoutTracker,
)
from repro.broadcast.messages import (
    Accept,
    Accepted,
    Ballot,
    CatchupReply,
    CatchupRequest,
    Decide,
    Deliver,
    DeliverRead,
    Forward,
    Heartbeat,
    HeartbeatAck,
    Nack,
    Prepare,
    Promise,
    Send,
    SequencerStamp,
    SetTimer,
)
from repro.broadcast.node import ThreadedNode
from repro.broadcast.paxos import NOOP, MultiPaxos
from repro.broadcast.sequencer import SequencerBroadcast
from repro.broadcast.storage import InMemoryStableStore, StableStore
from repro.broadcast.transport import FaultPlan, LinkFate, ThreadedTransport

__all__ = [
    "MultiPaxos",
    "NOOP",
    "SequencerBroadcast",
    "TimeoutTracker",
    "LeaseGrant",
    "QuorumLease",
    "ThreadedNode",
    "ThreadedTransport",
    "FaultPlan",
    "LinkFate",
    "StableStore",
    "InMemoryStableStore",
    "Ballot",
    "Send",
    "Deliver",
    "DeliverRead",
    "SetTimer",
    "Prepare",
    "Promise",
    "Accept",
    "Accepted",
    "Decide",
    "Nack",
    "CatchupRequest",
    "CatchupReply",
    "Forward",
    "Heartbeat",
    "HeartbeatAck",
    "SequencerStamp",
]
