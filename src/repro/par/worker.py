"""Shard worker process: the loop that actually escapes the GIL.

Each worker process owns one shard of the service state.  It rebuilds the
service from a ``(name, kwargs)`` spec (live services do not cross process
boundaries), trims it to its shard, then serves requests from its FIFO
queue:

- ``exec`` — apply a command, reply with ``(response, busy_seconds)``;
- ``collect`` — start of a barrier round: reply with this shard's fragment
  and *bar* the queue (buffering later requests) until the matching
  ``install`` delivers the post-barrier fragment;
- ``snapshot`` / ``restore`` — checkpointing hooks (the parent only calls
  them while the engine is quiescent);
- ``ping`` / ``stop`` — lifecycle.

Messages are 4-tuples ``(tag, seq, shard, payload)`` in both directions;
``seq`` numbers are parent-assigned and globally unique, which is what lets
an ``install`` find its barred ``collect`` even with unrelated requests
buffered in between.
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from typing import Any, Dict, Tuple

__all__ = ["shard_worker_main"]

#: Request tags (parent → worker).
EXEC, COLLECT, INSTALL, SNAPSHOT, RESTORE, PING, STOP = (
    "exec", "collect", "install", "snapshot", "restore", "ping", "stop")
#: Batched execution: payload is a list of commands, reply is one
#: ``(outcomes, busy_seconds)`` pair — one pickle and one queue wakeup in
#: each direction no matter how many commands ride along.
EXEC_MANY = "exec_many"
#: Reply tags (worker → parent).
RESP, FRAG, OK, ERR = "resp", "frag", "ok", "err"


def shard_worker_main(shard: int, n_shards: int, service_name: str,
                      service_kwargs: Dict[str, Any],
                      request_queue: Any, reply_queue: Any) -> None:
    """Entry point of one shard worker process."""
    # Imported here so a ``spawn``-started child pays its import cost once,
    # inside the worker, and the module stays importable without triggering
    # package side effects at definition time.
    from repro.apps import build_service

    service = build_service(service_name, **service_kwargs)
    # Trim the (fully initialized) service to this worker's shard: the
    # initial population is key-partitioned exactly like live commands.
    service.restore_shard(
        shard, n_shards, service.snapshot_shard(shard, n_shards))

    backlog: deque = deque()  # requests buffered while barred

    def next_request() -> Tuple[str, int, Any]:
        if backlog:
            return backlog.popleft()
        tag, seq, _shard, payload = request_queue.get()
        return tag, seq, payload

    def await_install(barrier_seq: int) -> Any:
        """Block on the matching install, buffering unrelated requests."""
        while True:
            message = request_queue.get()
            tag, seq, _shard, payload = message
            if tag == INSTALL and seq == barrier_seq:
                return payload
            backlog.append((tag, seq, payload))

    try:
        while True:
            tag, seq, payload = next_request()
            if tag == EXEC:
                started = time.perf_counter()
                try:
                    response = service.execute(payload)
                except Exception as error:  # noqa: BLE001 - forwarded
                    reply_queue.put((ERR, seq, shard, (
                        type(error).__name__, str(error),
                        traceback.format_exc())))
                    continue
                busy = time.perf_counter() - started
                reply_queue.put((RESP, seq, shard, (response, busy)))
            elif tag == EXEC_MANY:
                # A batch only carries pairwise non-conflicting commands
                # (the COS ready-set invariant), so executing them in
                # payload order is as good as any order.  Per-command
                # failures are data, not batch failures: each outcome is
                # ("ok", response) or ("err", (type, message, trace)).
                started = time.perf_counter()
                outcomes = []
                for command in payload:
                    try:
                        outcomes.append(("ok", service.execute(command)))
                    except Exception as error:  # noqa: BLE001 - forwarded
                        outcomes.append(("err", (
                            type(error).__name__, str(error),
                            traceback.format_exc())))
                busy = time.perf_counter() - started
                reply_queue.put((RESP, seq, shard, (outcomes, busy)))
            elif tag == COLLECT:
                reply_queue.put((FRAG, seq, shard,
                                 service.snapshot_shard(shard, n_shards)))
                fragment = await_install(seq)
                service.restore_shard(shard, n_shards, fragment)
            elif tag == SNAPSHOT:
                reply_queue.put((FRAG, seq, shard,
                                 service.snapshot_shard(shard, n_shards)))
            elif tag == RESTORE:
                service.restore_shard(shard, n_shards, payload)
                reply_queue.put((OK, seq, shard, None))
            elif tag == PING:
                reply_queue.put((OK, seq, shard, None))
            elif tag == STOP:
                reply_queue.put((OK, seq, shard, None))
                return
            else:  # pragma: no cover - protocol bug
                reply_queue.put((ERR, seq, shard, (
                    "ProtocolError", f"unknown request tag {tag!r}", "")))
    except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover
        # Parent died or we are being torn down: exit quietly; the
        # dispatcher's liveness watcher reports the crash on its side.
        return
