"""Wall-clock benchmark of the multiprocess engine (``"mp"`` backend).

Measures one replica executing a pre-created workload — the shape of the
paper's standalone experiment (§7.3), but on real cores and a wall clock
instead of the simulator's virtual one.  A feeder thread plays the atomic
broadcast (calling ``on_deliver`` in batches), the replica schedules
through the unchanged COS, and the engine under test executes:

- ``engine="threaded"`` — workers call the service in-process; the GIL
  serializes CPU-bound execution regardless of worker count (the
  known-limitation baseline);
- ``engine="mp"`` — workers dispatch to shard processes; on a multi-core
  host throughput scales with workers on low-conflict workloads.

Throughput is counted after a warm-up prefix, like the paper measures
"overall throughput obtained by the worker threads".  Speedup claims need
real cores: on a single-CPU host both engines collapse to sequential and
the mp engine only adds IPC overhead — ``benchmarks/bench_mp_scaling.py``
guards its assertion on ``os.cpu_count()`` accordingly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.apps import build_service
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.par.config import MpEngineConfig
from repro.par.engine import MpService
from repro.smr.replica import ParallelReplica
from repro.workload import WorkloadGenerator

__all__ = ["MpBenchConfig", "MpBenchResult", "run_mp_bench",
           "MpClusterConfig", "MpClusterResult", "run_mp_cluster"]

MP_BENCH_ENGINES = ("threaded", "mp")


@dataclass(frozen=True)
class MpBenchConfig:
    """Parameters of one engine-scaling run (one curve point)."""

    engine: str = "mp"                 # "mp" | "threaded" baseline
    mp_workers: int = 2                # shard processes (mp engine)
    workers: int = 4                   # replica worker threads (threaded)
    service: str = "linked-list"
    service_kwargs: Dict[str, Any] = field(default_factory=dict)
    cos_algorithm: str = "lock-free"
    write_pct: float = 0.0             # paper's best-scaling workload
    key_dist: str = "uniform"
    zipf_s: float = 0.99
    key_space: int = 2_000
    warm_ops: int = 200
    measure_ops: int = 2_000
    deliver_batch: int = 32
    #: Max ready commands one worker hands the engine per dispatch
    #: (``None`` → ParallelReplica's default; 1 disables batching).
    dispatch_batch: Optional[int] = None
    seed: int = 1
    timeout: float = 120.0
    start_method: Optional[str] = None

    def validate(self) -> None:
        if self.engine not in MP_BENCH_ENGINES:
            raise ConfigurationError(
                f"engine must be one of {MP_BENCH_ENGINES}, got "
                f"{self.engine!r}")
        if self.mp_workers < 1 or self.workers < 1:
            raise ConfigurationError("worker counts must be >= 1")
        if self.measure_ops < 1:
            raise ConfigurationError("measure_ops must be >= 1")

    def service_factory_kwargs(self) -> Dict[str, Any]:
        kwargs = dict(self.service_kwargs)
        if self.service == "linked-list":
            # Scale the list to the key space so ``contains`` walks are real
            # CPU work — the thing the mp engine parallelizes.
            kwargs.setdefault("initial_size", self.key_space)
        return kwargs


@dataclass(frozen=True)
class MpBenchResult:
    """Measured outcome (seconds are wall clock)."""

    config: MpBenchConfig
    executed: int                      # commands counted after warm-up
    duration: float                    # measured window
    throughput: float                  # commands per wall-clock second
    dispatch_p50: float = 0.0          # engine dispatch round trip (mp only)
    dispatch_p99: float = 0.0
    #: Fraction of the measured window each shard spent executing (mp only);
    #: sums > 1.0 are the engine genuinely using more than one core.
    shard_busy: List[float] = field(default_factory=list)
    barrier_rounds: int = 0

    @property
    def kops(self) -> float:
        return self.throughput / 1e3

    def to_json(self) -> Dict[str, Any]:
        data = asdict(self)
        data["config"] = asdict(self.config)
        data["kops"] = self.kops
        return data


def run_mp_bench(config: MpBenchConfig,
                 registry: Optional[MetricsRegistry] = None) -> MpBenchResult:
    """Run one engine-scaling point and return its measured throughput."""
    config.validate()
    registry = registry if registry is not None else MetricsRegistry()
    total = config.warm_ops + config.measure_ops
    workload = WorkloadGenerator(
        config.write_pct,
        key_space=config.key_space,
        seed=config.seed,
        key_dist=config.key_dist,
        zipf_s=config.zipf_s,
    )
    commands = workload.commands(total)

    engine: Optional[MpService] = None
    if config.engine == "mp":
        engine = MpService(
            config.service,
            config.service_factory_kwargs(),
            workers=config.mp_workers,
            config=MpEngineConfig(start_method=config.start_method),
            registry=registry,
        )
        service = engine
    else:
        service = build_service(
            config.service, **config.service_factory_kwargs())
    replica = ParallelReplica(
        0,
        service,
        cos_algorithm=config.cos_algorithm,
        workers=config.workers,
        registry=registry,
        dispatch_batch=config.dispatch_batch,
    )

    def feeder() -> None:
        # The atomic broadcast, reduced to its essence: batches delivered
        # in order.  COS backpressure (insert blocks when the graph is
        # full) paces this thread, as it paces delivery in a real replica.
        for offset in range(0, total, config.deliver_batch):
            replica.on_deliver(
                offset, commands[offset:offset + config.deliver_batch])

    if engine is not None:
        engine.start()
    replica.start()
    feeder_thread = threading.Thread(
        target=feeder, name="mp-bench-feeder", daemon=True)
    deadline = time.monotonic() + config.timeout
    warm_at: Optional[float] = None
    feeder_thread.start()
    try:
        while True:
            executed = replica.executed
            now = time.monotonic()
            if warm_at is None and executed >= config.warm_ops:
                warm_at = now
            if executed >= total:
                finished = now
                break
            if now > deadline:
                raise TimeoutError(
                    f"mp bench executed only {executed}/{total} commands "
                    f"within {config.timeout}s")
            time.sleep(0.002)
        feeder_thread.join(5.0)
    finally:
        replica.stop()
        if engine is not None:
            engine.stop()

    warm_at = warm_at if warm_at is not None else finished
    duration = max(finished - warm_at, 1e-9)
    measured = total - config.warm_ops
    dispatch = registry.histogram("mp_dispatch_seconds")
    shard_busy = []
    if config.engine == "mp":
        for shard in range(config.mp_workers):
            busy = registry.histogram("mp_shard_busy_seconds",
                                      shard=str(shard))
            shard_busy.append(busy.sum / duration)
    return MpBenchResult(
        config=config,
        executed=measured,
        duration=duration,
        throughput=measured / duration,
        dispatch_p50=dispatch.quantile(0.50),
        dispatch_p99=dispatch.quantile(0.99),
        shard_busy=shard_busy,
        barrier_rounds=int(
            registry.counter("mp_barrier_rounds_total").value),
    )


@dataclass(frozen=True)
class MpClusterConfig:
    """Closed-loop threaded-cluster run with a selectable engine.

    The SMR counterpart of :class:`MpBenchConfig`: a full in-process
    cluster (consensus + replicas + clients) where each replica executes on
    either engine — ``python -m repro smr --engine mp`` ends here.
    """

    engine: str = "mp"                 # "mp" | "threaded"
    mp_workers: int = 2
    workers: int = 4
    n_replicas: int = 3
    n_clients: int = 4
    batch: int = 8
    ops: int = 800                     # total commands across all clients
    write_pct: float = 0.0
    key_dist: str = "uniform"
    zipf_s: float = 0.99
    key_space: int = 500
    service: str = "linked-list"
    service_kwargs: Dict[str, Any] = field(default_factory=dict)
    cos_algorithm: str = "lock-free"
    seed: int = 1
    client_timeout: float = 5.0
    #: Optimistic execution over the sequencer fast path (repro.spec,
    #: docs/speculation.md); threaded engine only.
    speculative: bool = False

    def validate(self) -> None:
        if self.engine not in MP_BENCH_ENGINES:
            raise ConfigurationError(
                f"engine must be one of {MP_BENCH_ENGINES}, got "
                f"{self.engine!r}")
        if self.speculative and self.engine != "threaded":
            raise ConfigurationError(
                "speculative execution requires --engine threaded")

    def service_factory_kwargs(self) -> Dict[str, Any]:
        kwargs = dict(self.service_kwargs)
        if self.service == "linked-list":
            kwargs.setdefault("initial_size", self.key_space)
        return kwargs


@dataclass(frozen=True)
class MpClusterResult:
    """Measured outcome of one closed-loop cluster run (wall clock)."""

    config: MpClusterConfig
    executed: int
    errors: int
    duration: float
    throughput: float
    latency_mean: float               # per-batch round trip
    latency_p50: float
    latency_p99: float

    @property
    def kops(self) -> float:
        return self.throughput / 1e3

    def to_json(self) -> Dict[str, Any]:
        data = asdict(self)
        data["config"] = asdict(self.config)
        data["kops"] = self.kops
        return data


def run_mp_cluster(config: MpClusterConfig) -> MpClusterResult:
    """Drive a ThreadedCluster with closed-loop clients on either engine."""
    config.validate()
    # Imported here: the cluster pulls in broadcast machinery the plain
    # engine benchmark does not need.
    from repro.smr.client import ClientTimeout
    from repro.smr.cluster import ClusterConfig, ThreadedCluster

    cluster_config = ClusterConfig(
        n_replicas=config.n_replicas,
        protocol="sequencer" if config.speculative else "paxos",
        speculative=config.speculative,
        cos_algorithm=config.cos_algorithm,
        workers=config.workers,
        engine=config.engine,
        mp_workers=config.mp_workers,
        service=config.service,
        service_kwargs=config.service_factory_kwargs(),
        client_timeout=config.client_timeout,
    )
    batches_per_client = max(
        1, config.ops // (config.n_clients * config.batch))
    latencies: List[float] = []
    lock = threading.Lock()
    executed = 0
    errors = 0

    def client_loop(cluster: "ThreadedCluster", index: int) -> None:
        nonlocal executed, errors
        workload = WorkloadGenerator(
            config.write_pct,
            key_space=config.key_space,
            seed=config.seed * 1_000 + index,
            key_dist=config.key_dist,
            zipf_s=config.zipf_s,
        )
        client = cluster.client(contact=index % config.n_replicas)
        for _ in range(batches_per_client):
            commands = workload.commands(config.batch)
            begun = time.monotonic()
            try:
                client.execute_batch(commands)
            except ClientTimeout:
                with lock:
                    errors += len(commands)
                continue
            elapsed = time.monotonic() - begun
            with lock:
                latencies.append(elapsed)
                executed += len(commands)

    with ThreadedCluster(cluster_config) as cluster:
        threads = [
            threading.Thread(target=client_loop, args=(cluster, index),
                             daemon=True)
            for index in range(config.n_clients)
        ]
        begun = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        duration = max(time.monotonic() - begun, 1e-9)

    ordered = sorted(latencies)

    def percentile(fraction: float) -> float:
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    return MpClusterResult(
        config=config,
        executed=executed,
        errors=errors,
        duration=duration,
        throughput=executed / duration,
        latency_mean=sum(ordered) / len(ordered) if ordered else 0.0,
        latency_p50=percentile(0.50),
        latency_p99=percentile(0.99),
    )
