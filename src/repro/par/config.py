"""Configuration of the multiprocess execution engine.

Kept in its own module so deployment configs (``repro.net``), benchmarks
and tests share one validated parameter set.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["MpEngineConfig", "default_start_method"]


def default_start_method() -> str:
    """``fork`` where available (fast, no re-import), else ``spawn``.

    The engine forks before any dispatcher thread touches its queues, so
    the classic fork-with-threads hazards do not apply to engine state;
    ``spawn`` remains selectable for platforms and embeddings where
    forking is unsafe.
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass(frozen=True)
class MpEngineConfig:
    """Tunables of one :class:`~repro.par.engine.MpService` instance.

    Attributes:
        start_method: ``multiprocessing`` start method (``None`` = auto:
            :func:`default_start_method`).
        dispatch_timeout: Seconds a dispatcher thread waits for a shard
            worker's response before declaring the shard crashed.
        ready_timeout: Seconds to wait for every worker's readiness ping
            at startup.
        stop_timeout: Seconds to wait for workers to drain and exit on
            shutdown before they are terminated.
    """

    start_method: Optional[str] = None
    dispatch_timeout: float = 30.0
    ready_timeout: float = 15.0
    stop_timeout: float = 5.0

    def validate(self) -> None:
        if self.start_method is not None:
            methods = multiprocessing.get_all_start_methods()
            if self.start_method not in methods:
                raise ConfigurationError(
                    f"start_method {self.start_method!r} not available; "
                    f"choose from {methods}")
        for name in ("dispatch_timeout", "ready_timeout", "stop_timeout"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be > 0")

    def resolved_start_method(self) -> str:
        return self.start_method or default_start_method()
