"""Shard routing: command → owning worker process(es).

The router is the parent-side view of the state partition.  It resolves a
service's :meth:`~repro.smr.service.ShardableService.shards_of` answer into
one of two dispatch plans:

- a **single shard** — the common case; the command is queued to that
  shard's worker process and runs concurrently with commands on every other
  shard (this is where the engine escapes the GIL);
- a **barrier set** (several shards, or all of them for the
  :data:`~repro.smr.service.ALL_SHARDS` sentinel) — the command must see a
  combined view of those shards and executes under a barrier round
  (:mod:`repro.par.barrier`).

Routing must be identical in every replica process, which is why
:func:`repro.core.command.stable_hash` backs the services' ``shards_of``
implementations rather than the per-process-salted builtin ``hash``.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.command import Command
from repro.errors import ConfigurationError
from repro.smr.service import ShardableService

__all__ = ["ShardRouter"]


class ShardRouter:
    """Resolves commands to shard sets against a template service."""

    def __init__(self, template: ShardableService, n_shards: int):
        if n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be >= 1, got {n_shards}")
        if not isinstance(template, ShardableService):
            raise ConfigurationError(
                f"{type(template).__name__} is not shardable; services run "
                f"under the mp engine must implement ShardableService")
        self._template = template
        self.n_shards = n_shards
        self._all = tuple(range(n_shards))

    def route(self, command: Command) -> Tuple[int, ...]:
        """The sorted shard set ``command`` touches (never empty).

        ``ALL_SHARDS`` (the empty tuple) resolves to every shard; anything
        out of range is a service bug and raises immediately rather than
        corrupting a worker queue.
        """
        shards = tuple(self._template.shards_of(command, self.n_shards))
        if not shards:
            return self._all
        for shard in shards:
            if not 0 <= shard < self.n_shards:
                raise ConfigurationError(
                    f"{command!r} routed to shard {shard}, outside "
                    f"[0, {self.n_shards})")
        if len(shards) == 1:
            return shards
        return tuple(sorted(set(shards)))

    def is_barrier(self, shards: Tuple[int, ...]) -> bool:
        return len(shards) > 1
