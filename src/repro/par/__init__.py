"""repro.par — multiprocess execution engine (escaping the GIL).

The package turns a :class:`~repro.smr.replica.ParallelReplica` into a
true multi-core executor without touching the scheduler or the COS: the
replica's worker threads become dispatchers that hand ready commands to
shard worker *processes* over queues and block — GIL released — while the
shards compute in parallel.  See docs/parallel_execution.md.

Public surface:

- :class:`MpService` — the engine, a drop-in ``Service``;
- :class:`MpEngineConfig` — tunables (start method, timeouts);
- :class:`ShardRouter` — command → shard-set resolution;
- :func:`run_mp_bench` / configs — the ``"mp"`` benchmark backend.
"""

from repro.par.config import MpEngineConfig, default_start_method
from repro.par.engine import MpService
from repro.par.shard import ShardRouter

__all__ = [
    "MpEngineConfig",
    "MpService",
    "ShardRouter",
    "default_start_method",
]
