"""Barrier rounds: cross-shard commands over partitioned state.

A command whose footprint spans several shards (a cross-shard bank
transfer, or anything reporting :data:`~repro.smr.service.ALL_SHARDS`)
cannot run inside a single worker — no process holds the whole picture.
The engine executes it as a *barrier round*:

1. **collect** — every involved shard replies with its current fragment
   and bars its queue (commands already queued ahead of the collect have
   executed; later ones wait);
2. **execute** — the coordinator merges the fragments into a scratch
   service in the parent and applies the command there;
3. **install** — each involved shard receives its post-command fragment,
   restores it, and resumes its queue.

Correctness leans on two existing guarantees: per-shard queues are FIFO,
and the COS never hands out a command while a conflicting predecessor is
in flight — so everything the barrier reads has fully executed, and
everything that could observe its writes is ordered behind the installs.
Barriers serialize against each other (one coordinator lock): two
overlapping barrier rounds could otherwise bar each other's shards in
opposite orders and deadlock.

This is the engine's concession to the literature: P-SMR's
cross-partition commands synchronize all involved workers the same way,
and the cost is why the scaling benchmark uses low-conflict workloads.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

from repro.core.command import Command
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.par.dispatcher import MpDispatcher
from repro.par.worker import COLLECT
from repro.smr.service import ShardableService

__all__ = ["BarrierCoordinator"]


class BarrierCoordinator:
    """Serializes and runs collect → execute → install rounds."""

    def __init__(
        self,
        dispatcher: MpDispatcher,
        scratch: ShardableService,
        n_shards: int,
        registry: Optional[MetricsRegistry] = None,
    ):
        self._dispatcher = dispatcher
        self._scratch = scratch
        self._n_shards = n_shards
        self.lock = threading.Lock()
        registry = registry if registry is not None else NULL_REGISTRY
        self._clock = registry.clock if registry.enabled else None
        self._m_rounds = registry.counter("mp_barrier_rounds_total")
        self._m_round_seconds = registry.histogram("mp_barrier_seconds")
        self._m_stalls = {
            shard: registry.histogram("mp_barrier_stall_seconds",
                                      shard=str(shard))
            for shard in range(n_shards)
        }

    def execute(self, command: Command, shards: Tuple[int, ...]) -> Any:
        """Run ``command`` across ``shards`` under one barrier round."""
        clock = self._clock
        with self.lock:
            started = clock() if clock else 0.0
            seqs = {
                shard: self._dispatcher.submit(shard, COLLECT)
                for shard in shards
            }
            fragments: Dict[int, Any] = {}
            collected_at: Dict[int, float] = {}
            for shard in shards:
                fragments[shard] = self._dispatcher.wait(seqs[shard], shard)
                if clock:
                    collected_at[shard] = clock()
            scratch = self._scratch
            scratch.restore(
                scratch.recompose_snapshots(
                    [fragments[shard] for shard in shards]))
            response = scratch.execute(command)
            for shard in shards:
                self._dispatcher.install(
                    shard, seqs[shard],
                    scratch.snapshot_shard(shard, self._n_shards))
            if clock:
                released = clock()
                for shard in shards:
                    # A shard stalls from the moment it handed over its
                    # fragment (barring its queue) until its install is on
                    # the wire again.
                    self._m_stalls[shard].observe(
                        released - collected_at[shard])
                self._m_round_seconds.observe(released - started)
            self._m_rounds.inc()
        return response
