"""Parent-side dispatch plumbing for the multiprocess engine.

The dispatcher owns the worker processes and the queues between them: one
FIFO request queue per shard (ordering within a shard is the correctness
anchor of the barrier protocol) and one shared reply queue drained by a
collector thread.  Dispatcher threads — the :class:`ParallelReplica`
worker threads calling ``service.execute`` — block on a per-request slot
while the shard process computes, releasing the GIL to the other
dispatcher threads; that handoff is the whole point of the engine.

Crash handling is fail-stop: a dead or unresponsive worker fails every
outstanding request with :class:`~repro.errors.ShardCrashed` and poisons
the engine; recovery is the replica layer's job (checkpoint from a peer),
matching the system's crash model.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as queue_module
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ShardCrashed, ShardError, ShutdownError
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.par.config import MpEngineConfig
from repro.par.worker import (
    ERR,
    EXEC_MANY,
    INSTALL,
    OK,
    PING,
    STOP,
    shard_worker_main,
)

__all__ = ["MpDispatcher"]

#: How often the collector wakes to check worker liveness (seconds).
_LIVENESS_INTERVAL = 0.2

#: Consecutive reply-queue failures (broken pipe / EOF while not closing)
#: the collector tolerates before declaring the engine dead.
_REPLY_FAILURE_LIMIT = 5

#: Base backoff between reply-queue failures.  A broken pipe raises
#: instantly, bypassing the blocking timeout; without a sleep the
#: collector would hot-spin a core until shutdown.
_REPLY_FAILURE_BACKOFF = 0.05


class _Slot:
    """One outstanding request: a slot the collector thread fills.

    ``shard`` and ``weight`` (commands carried — > 1 for a batch) exist so
    the ``mp_queue_depth`` gauges can be reconciled exactly on every exit
    path, including :meth:`MpDispatcher._poison`.
    """

    __slots__ = ("event", "value", "error", "shard", "weight")

    def __init__(self, shard: int, weight: int = 1) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.shard = shard
        self.weight = weight


class MpDispatcher:
    """Process pool + request/reply plumbing for one engine instance."""

    def __init__(
        self,
        service_name: str,
        service_kwargs: Dict[str, Any],
        n_shards: int,
        config: MpEngineConfig,
        registry: Optional[MetricsRegistry] = None,
    ):
        self._service_name = service_name
        self._service_kwargs = dict(service_kwargs)
        self.n_shards = n_shards
        self._config = config
        registry = registry if registry is not None else NULL_REGISTRY
        self._depth_gauges = [
            registry.gauge("mp_queue_depth", shard=str(shard))
            for shard in range(n_shards)
        ]
        self._m_batch_size = registry.histogram("mp_batch_size")
        self._seq = itertools.count(1)
        self._pending: Dict[int, _Slot] = {}
        self._pending_lock = threading.Lock()
        self._processes: List[multiprocessing.process.BaseProcess] = []
        self._request_queues: List[Any] = []
        self._reply_queue: Any = None
        self._collector: Optional[threading.Thread] = None
        self._closing = threading.Event()
        self._crashed: Optional[ShardCrashed] = None
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        if self._started:
            raise ShutdownError("dispatcher already started")
        self._started = True
        ctx = multiprocessing.get_context(
            self._config.resolved_start_method())
        self._reply_queue = ctx.Queue()
        for shard in range(self.n_shards):
            request_queue = ctx.Queue()
            self._request_queues.append(request_queue)
            process = ctx.Process(
                target=shard_worker_main,
                args=(shard, self.n_shards, self._service_name,
                      self._service_kwargs, request_queue,
                      self._reply_queue),
                name=f"repro-par-shard-{shard}",
                daemon=True,
            )
            self._processes.append(process)
            process.start()
        self._collector = threading.Thread(
            target=self._collector_loop, name="repro-par-collector",
            daemon=True)
        self._collector.start()
        # Readiness: every worker must answer a ping (this also surfaces
        # spawn-time import errors as a clean ShardCrashed).
        for shard in range(self.n_shards):
            self.request(shard, PING, timeout=self._config.ready_timeout)

    def stop(self) -> None:
        """Drain and join workers; idempotent."""
        if not self._started or self._stopped:
            return
        self._stopped = True
        if self._crashed is None:
            for shard in range(self.n_shards):
                try:
                    seq = self._submit(shard, STOP, None)
                    self._await(seq, shard, self._config.stop_timeout)
                except (ShardError, ShutdownError):
                    pass  # already dead or wedged; terminated below
        # Only now may the collector exit: the stop acks above still had to
        # flow through it.
        self._closing.set()
        for process in self._processes:
            process.join(self._config.stop_timeout)
            if process.is_alive():
                process.terminate()
                process.join(1.0)
        if self._collector is not None:
            self._collector.join(self._config.stop_timeout)
        for request_queue in self._request_queues:
            request_queue.close()
        if self._reply_queue is not None:
            self._reply_queue.close()

    @property
    def running(self) -> bool:
        return self._started and not self._stopped and self._crashed is None

    # --------------------------------------------------------------- requests

    def request(self, shard: int, tag: str, payload: Any = None,
                timeout: Optional[float] = None) -> Any:
        """Send one request to ``shard`` and block for its reply payload."""
        seq = self._submit(shard, tag, payload)
        return self._await(seq, shard, timeout)

    def submit(self, shard: int, tag: str, payload: Any = None) -> int:
        """Send a request without waiting; returns its seq for :meth:`wait`."""
        return self._submit(shard, tag, payload)

    def submit_many(self, shard: int, commands: List[Any]) -> int:
        """Queue a batch of commands for ``shard`` in ONE queue hop.

        The whole batch is one pickle and one worker wakeup; the reply
        (see :meth:`wait`) is ``(outcomes, busy_seconds)`` with one
        ``("ok", response)`` / ``("err", (type, message, trace))`` outcome
        per command, in submission order.  Commands in one batch must be
        pairwise non-conflicting — the caller takes them from a COS ready
        set, which guarantees exactly that.
        """
        if not commands:
            raise ShardError("submit_many needs at least one command")
        self._m_batch_size.observe(len(commands))
        return self._submit(shard, EXEC_MANY, list(commands),
                            weight=len(commands))

    def request_many(self, shard: int, commands: List[Any],
                     timeout: Optional[float] = None) -> Any:
        """Batched :meth:`request`: one hop out, one reply back."""
        seq = self.submit_many(shard, commands)
        return self._await(seq, shard, timeout)

    def wait(self, seq: int, shard: int,
             timeout: Optional[float] = None) -> Any:
        return self._await(seq, shard, timeout)

    def install(self, shard: int, seq: int, fragment: Any) -> None:
        """Release a barred shard (no reply; FIFO does the sequencing)."""
        self._request_queues[shard].put((INSTALL, seq, shard, fragment))

    def _submit(self, shard: int, tag: str, payload: Any,
                weight: int = 1) -> int:
        if not self._started:
            raise ShutdownError("dispatcher not started")
        if self._stopped and tag != STOP:
            raise ShutdownError("dispatcher is stopping")
        if self._crashed is not None:
            raise self._crashed
        seq = next(self._seq)
        slot = _Slot(shard, weight)
        with self._pending_lock:
            self._pending[seq] = slot
        self._depth_gauges[shard].inc(weight)
        self._request_queues[shard].put((tag, seq, shard, payload))
        return seq

    def _await(self, seq: int, shard: int,
               timeout: Optional[float]) -> Any:
        timeout = timeout if timeout is not None else (
            self._config.dispatch_timeout)
        with self._pending_lock:
            slot = self._pending.get(seq)
        if slot is None:  # already failed and cleared by a crash
            raise self._crashed or ShardCrashed(f"request {seq} was dropped")
        fulfilled = slot.event.wait(timeout)
        if not fulfilled:
            # The collector may have filled the slot between the wait's
            # expiry and this cleanup; a reply that raced the deadline is
            # still a reply, not a crash.
            fulfilled = slot.event.is_set()
        with self._pending_lock:
            self._pending.pop(seq, None)
        if not fulfilled:
            self._depth_gauges[shard].dec(slot.weight)
            error = ShardCrashed(
                f"shard {shard} did not answer request {seq} within "
                f"{timeout}s")
            self._poison(error)
            raise error
        if slot.error is not None:
            raise slot.error
        return slot.value

    # -------------------------------------------------------------- collector

    def _collector_loop(self) -> None:
        failures = 0  # consecutive reply-queue breakages
        while True:
            try:
                tag, seq, shard, payload = self._reply_queue.get(
                    timeout=_LIVENESS_INTERVAL)
            except queue_module.Empty:
                if self._closing.is_set():
                    return
                failures = 0  # the queue is healthy, just idle
                self._check_liveness()
                continue
            except (OSError, EOFError):
                # Broken/closed reply pipe: get() returns instantly, so
                # back off (bounded) instead of hot-spinning, and poison
                # the engine once the breakage is clearly persistent.
                if self._closing.is_set():
                    return
                failures += 1
                if failures >= _REPLY_FAILURE_LIMIT:
                    self._poison(ShardCrashed(
                        f"reply queue broken ({failures} consecutive "
                        f"failures); engine cannot receive results"))
                    return
                self._check_liveness()
                self._closing.wait(
                    min(_REPLY_FAILURE_BACKOFF * failures,
                        _LIVENESS_INTERVAL))
                continue
            failures = 0
            with self._pending_lock:
                slot = self._pending.get(seq)
            if slot is None:
                continue  # abandoned (timeout/crash cleanup)
            self._depth_gauges[shard].dec(slot.weight)
            if tag == ERR:
                error_type, message, trace = payload
                slot.error = ShardError(
                    f"shard {shard} execution failed: "
                    f"{error_type}: {message}\n{trace}")
            else:  # RESP / FRAG / OK all deliver their payload
                slot.value = payload
            slot.event.set()

    def _check_liveness(self) -> None:
        if self._crashed is not None:
            return
        for shard, process in enumerate(self._processes):
            if not process.is_alive():
                self._poison(ShardCrashed(
                    f"shard {shard} worker process died "
                    f"(exitcode {process.exitcode})"))
                return

    def _poison(self, error: ShardCrashed) -> None:
        """Fail every outstanding request and refuse new ones.

        The pending map is cleared under the lock so neither a late reply
        (collector) nor a waiter's own cleanup can decrement a gauge this
        method already reconciled; each waiter still holds its slot
        reference and sees the error through it.
        """
        self._crashed = error
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for slot in pending:
            if not slot.event.is_set():  # answered slots keep their reply
                # The collector will never answer this slot, so its depth
                # contribution must be retired here — otherwise the
                # mp_queue_depth gauges read N forever after a crash.
                self._depth_gauges[slot.shard].dec(slot.weight)
                slot.error = error
                slot.event.set()
