"""`MpService` — the multiprocess execution engine behind the Service API.

The engine is a drop-in :class:`~repro.smr.service.Service`: a
:class:`~repro.smr.replica.ParallelReplica` built on it keeps its whole
shape — the scheduler thread inserts into the existing COS
(coarse/fine/lock-free, unchanged) and worker threads call
``service.execute`` — but ``execute`` here *dispatches* the command to the
worker process owning its shard and blocks on the reply.  While a
dispatcher thread blocks, the GIL is free, so N shard processes execute N
single-shard commands genuinely in parallel: this is the path on which the
paper's multi-core scaling claim (Figs. 2–3) becomes measurable in Python
(docs/parallel_execution.md).

Because the dispatch threads spend their time blocked, a replica should
run more of them than there are shards; the replica reads the
:attr:`dispatch_parallelism` hint and sizes its pool accordingly so shard
queues stay fed (pipelining) without the engine's users having to know.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.apps import build_service
from repro.core.command import Command, ConflictRelation
from repro.errors import ConfigurationError, ShardError, ShutdownError
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.par.barrier import BarrierCoordinator
from repro.par.config import MpEngineConfig
from repro.par.dispatcher import MpDispatcher
from repro.par.shard import ShardRouter
from repro.par.worker import EXEC, RESTORE, SNAPSHOT
from repro.smr.service import ShardableService

__all__ = ["MpService"]


class MpService(ShardableService):
    """Shard-per-process execution engine wearing the Service interface."""

    def __init__(
        self,
        service: str,
        service_kwargs: Optional[Dict[str, Any]] = None,
        workers: int = 2,
        config: Optional[MpEngineConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        """Args:
            service: Registered service name (:data:`repro.apps.SERVICES`);
                worker processes rebuild it from this spec.
            service_kwargs: Overrides for the service factory (e.g.
                ``{"initial_size": 10000}`` for the linked list).
            workers: Number of shard worker processes (= state shards).
            config: Engine tunables (start method, timeouts).
            registry: Observability sink (per-shard busy time, dispatch
                latency, queue depths, barrier stalls).
        """
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self._config = config if config is not None else MpEngineConfig()
        self._config.validate()
        self.service_name = service
        self.service_kwargs = dict(service_kwargs or {})
        self.workers = workers
        template = build_service(service, **self.service_kwargs)
        if not isinstance(template, ShardableService):
            raise ConfigurationError(
                f"service {service!r} is not shardable")
        self._template = template
        self._router = ShardRouter(template, workers)
        self.registry = registry if registry is not None else NULL_REGISTRY
        obs = self.registry
        self._obs_on = obs.enabled
        self._m_dispatch = obs.histogram("mp_dispatch_seconds")
        self._m_busy = [
            obs.histogram("mp_shard_busy_seconds", shard=str(shard))
            for shard in range(workers)
        ]
        self._m_commands = [
            obs.counter("mp_shard_commands_total", shard=str(shard))
            for shard in range(workers)
        ]
        self._dispatcher = MpDispatcher(
            service, self.service_kwargs, workers, self._config, obs)
        self._barrier = BarrierCoordinator(
            self._dispatcher,
            build_service(service, **self.service_kwargs),
            workers,
            obs,
        )
        self._pending_restore: Optional[Any] = None
        self._started = False

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "MpService":
        """Spawn the shard workers; must precede any ``execute``.

        Call this before starting replica/transport threads: with the
        ``fork`` start method the engine wants to be the first thing that
        multiplies the process.
        """
        if self._started:
            raise ShutdownError("mp engine already started")
        self._started = True
        self._dispatcher.start()
        if self._pending_restore is not None:
            snapshot, self._pending_restore = self._pending_restore, None
            self._restore_running(snapshot)
        return self

    def stop(self) -> None:
        self._dispatcher.stop()

    def __enter__(self) -> "MpService":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._started and self._dispatcher.running

    @property
    def dispatch_parallelism(self) -> int:
        """Replica worker threads needed to keep the shards pipelined."""
        return 2 * self.workers

    # --------------------------------------------------------------- service

    def execute(self, command: Command) -> Any:
        shards = self._router.route(command)
        if len(shards) > 1:
            return self._barrier.execute(command, shards)
        shard = shards[0]
        if self._obs_on:
            entered = self.registry.clock()
        response, busy = self._dispatcher.request(shard, EXEC, command)
        if self._obs_on:
            self._m_dispatch.observe(self.registry.clock() - entered)
            self._m_busy[shard].observe(busy)
            self._m_commands[shard].inc()
        return response

    def execute_many(self, commands: Sequence[Command]) -> List[Any]:
        """Execute a batch of pairwise non-conflicting commands.

        Single-shard commands are grouped per shard and each group moves
        to its worker in ONE queue hop (one pickle, one wakeup) via
        :meth:`MpDispatcher.submit_many`; every group is submitted before
        any reply is awaited, so one dispatcher thread pipelines several
        shards at once.  Multi-shard commands still go through the
        barrier individually.  Responses come back in input order.

        Non-conflicting is the caller's contract (a COS ready set
        provides it); conflicting commands in one batch would lose their
        required ordering across shard groups.
        """
        if not commands:
            return []
        if self._obs_on:
            entered = self.registry.clock()
        responses: List[Any] = [None] * len(commands)
        groups: Dict[int, List[int]] = {}
        barrier_indices: List[int] = []
        for index, command in enumerate(commands):
            shards = self._router.route(command)
            if len(shards) > 1:
                barrier_indices.append(index)
            else:
                groups.setdefault(shards[0], []).append(index)
        seqs = [
            (shard, indices,
             self._dispatcher.submit_many(
                 shard, [commands[i] for i in indices]))
            for shard, indices in groups.items()
        ]
        for index in barrier_indices:
            command = commands[index]
            responses[index] = self._barrier.execute(
                command, self._router.route(command))
        failure: Optional[ShardError] = None
        for shard, indices, seq in seqs:
            # Every batch is awaited even after a failure so no reply is
            # left orphaned in the pending map.
            outcomes, busy = self._dispatcher.wait(seq, shard)
            if self._obs_on:
                self._m_busy[shard].observe(busy)
                self._m_commands[shard].inc(len(indices))
            for index, (status, payload) in zip(indices, outcomes):
                if status == "err":
                    error_type, message, trace = payload
                    if failure is None:
                        failure = ShardError(
                            f"shard {shard} execution failed: "
                            f"{error_type}: {message}\n{trace}")
                else:
                    responses[index] = payload
        if failure is not None:
            raise failure
        if self._obs_on:
            self._m_dispatch.observe(self.registry.clock() - entered)
        return responses

    @property
    def conflicts(self) -> ConflictRelation:
        return self._template.conflicts

    @property
    def execution_cost(self) -> float:
        return self._template.execution_cost

    # ---------------------------------------------------------- checkpointing

    def snapshot(self) -> Any:
        """Consistent full snapshot (caller must be quiescent, as in
        :meth:`repro.smr.replica.ParallelReplica.take_checkpoint`)."""
        if not self._started:
            return self._cold_service().snapshot()
        with self._barrier.lock:
            seqs = [
                self._dispatcher.submit(shard, SNAPSHOT)
                for shard in range(self.workers)
            ]
            fragments = [
                self._dispatcher.wait(seq, shard)
                for shard, seq in enumerate(seqs)
            ]
        return self._template.recompose_snapshots(fragments)

    def restore(self, snapshot: Any) -> None:
        """Adopt a full snapshot (e.g. a peer's checkpoint).

        Before :meth:`start` the snapshot is stashed and installed right
        after the workers come up — the order
        ``install_checkpoint`` → ``start`` used by replicas.
        """
        if not self._started:
            self._pending_restore = snapshot
            return
        self._restore_running(snapshot)

    def _restore_running(self, snapshot: Any) -> None:
        fragments = self._template.split_snapshot(snapshot, self.workers)
        with self._barrier.lock:
            seqs = [
                self._dispatcher.submit(shard, RESTORE, fragments[shard])
                for shard in range(self.workers)
            ]
            for shard, seq in enumerate(seqs):
                self._dispatcher.wait(seq, shard)

    def _cold_service(self) -> ShardableService:
        """The engine's pre-start state as a throwaway instance."""
        service = build_service(self.service_name, **self.service_kwargs)
        if self._pending_restore is not None:
            service.restore(self._pending_restore)
        return service

    # ---------------------------------------------------- sharding passthrough

    def shards_of(self, command: Command, n_shards: int):
        return self._template.shards_of(command, n_shards)

    def snapshot_shard(self, shard: int, n_shards: int) -> Any:
        service = build_service(self.service_name, **self.service_kwargs)
        service.restore(self.snapshot())
        return service.snapshot_shard(shard, n_shards)

    def recompose_snapshots(self, fragments) -> Any:
        return self._template.recompose_snapshots(fragments)
