"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

- ``figures [fig2 ... fig6] [--full]`` — regenerate the paper's figures as
  ASCII tables.
- ``standalone --algorithm A --workers N [...]`` — one standalone
  data-structure run (paper §7.3), printing throughput.
- ``smr --algorithm A --workers N [...]`` — one simulated SMR run
  (paper §7.4), printing throughput and latency.
- ``ablations [--full]`` — run the ablation sweeps.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import (
    ablation_batch_size,
    plot_figure,
    ablation_class_scheduler,
    ablation_graph_size,
    ablation_handoff_cost,
    ablation_keyed_conflicts,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    print_figure,
    run_standalone,
)
from repro.bench.harness import StandaloneConfig
from repro.core import COS_ALGORITHMS
from repro.sim import PROFILES
from repro.smr.sim_cluster import SimClusterConfig, run_sim_cluster

__all__ = ["main"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--algorithm", default="lock-free",
                        choices=COS_ALGORITHMS)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--profile", default="light",
                        choices=sorted(PROFILES))
    parser.add_argument("--write-pct", type=float, default=0.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--measure-ops", type=int, default=5000)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Boosting concurrency in Parallel "
                    "State Machine Replication' (Middleware '19)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("names", nargs="*",
                         choices=["fig2", "fig3", "fig4", "fig5", "fig6", []],
                         help="figures to run (default: all)")
    figures.add_argument("--full", action="store_true",
                         help="paper's full parameter grids")
    figures.add_argument("--plot", action="store_true",
                         help="render ASCII charts instead of tables")

    standalone = sub.add_parser(
        "standalone", help="one standalone data-structure run (paper §7.3)")
    _add_common(standalone)

    smr = sub.add_parser(
        "smr", help="one simulated SMR cluster run (paper §7.4)")
    _add_common(smr)
    smr.add_argument("--clients", type=int, default=200)

    ablations = sub.add_parser("ablations", help="run ablation sweeps")
    ablations.add_argument("--full", action="store_true")
    return parser


def _cmd_figures(args: argparse.Namespace) -> int:
    wanted = set(args.names) or {"fig2", "fig3", "fig4", "fig5", "fig6"}
    quick = not args.full
    show = (lambda fig: print(plot_figure(fig))) if args.plot else print_figure
    fig2_data = fig4_data = None
    if wanted & {"fig2", "fig3"}:
        fig2_data = figure2(quick=quick)
        if "fig2" in wanted:
            show(fig2_data)
    if "fig3" in wanted:
        show(figure3(quick=quick, fig2=fig2_data))
    if wanted & {"fig4", "fig5"}:
        fig4_data = figure4(quick=quick)
        if "fig4" in wanted:
            show(fig4_data)
    if "fig5" in wanted:
        show(figure5(quick=quick, fig4=fig4_data))
    if "fig6" in wanted:
        show(figure6(quick=quick))
    return 0


def _cmd_standalone(args: argparse.Namespace) -> int:
    result = run_standalone(StandaloneConfig(
        algorithm=args.algorithm,
        workers=args.workers,
        profile=PROFILES[args.profile],
        write_pct=args.write_pct,
        seed=args.seed,
        measure_ops=args.measure_ops,
        warm_ops=max(args.measure_ops // 10, 50),
    ))
    print(f"algorithm={args.algorithm} workers={args.workers} "
          f"profile={args.profile} writes={args.write_pct}%")
    print(f"throughput: {result.kops:.1f} kops/s "
          f"({result.executed} cmds in {result.virtual_time * 1e3:.1f} "
          f"virtual ms, {result.events} events)")
    return 0


def _cmd_smr(args: argparse.Namespace) -> int:
    result = run_sim_cluster(SimClusterConfig(
        algorithm=args.algorithm,
        workers=args.workers,
        profile=PROFILES[args.profile],
        write_pct=args.write_pct,
        n_clients=args.clients,
        seed=args.seed,
        measure_ops=args.measure_ops,
        warm_ops=max(args.measure_ops // 10, 50),
    ))
    print(f"algorithm={args.algorithm} workers={args.workers} "
          f"profile={args.profile} writes={args.write_pct}% "
          f"clients={args.clients}")
    print(f"throughput: {result.kops:.1f} kops/s   "
          f"latency: mean {result.latency_ms:.2f} ms / "
          f"p99 {result.latency_p99 * 1e3:.2f} ms")
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    quick = not args.full
    for runner in (ablation_graph_size, ablation_batch_size,
                   ablation_keyed_conflicts, ablation_handoff_cost,
                   ablation_class_scheduler):
        print_figure(runner(quick=quick))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "figures": _cmd_figures,
        "standalone": _cmd_standalone,
        "smr": _cmd_smr,
        "ablations": _cmd_ablations,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
