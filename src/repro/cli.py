"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

- ``figures [fig2 ... fig6] [--full]`` — regenerate the paper's figures as
  ASCII tables.
- ``standalone --algorithm A --workers N [...]`` — one standalone
  data-structure run (paper §7.3), printing throughput.
- ``smr --algorithm A --workers N [...]`` — one simulated SMR run
  (paper §7.4), printing throughput and latency.
- ``ablations [--full]`` — run the ablation sweeps.
- ``check --algorithm A --workers N --commands M [...]`` — systematically
  model-check the algorithm's schedule space against the COS sequential
  specification (see ``docs/model_checking.md``).
- ``net replica|supervise|client|bench [...]`` — the TCP multi-process
  deployment: replica/client processes, a local cluster supervisor, and a
  loopback benchmark (see ``docs/deployment.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import (
    ablation_batch_size,
    plot_figure,
    ablation_class_scheduler,
    ablation_graph_size,
    ablation_handoff_cost,
    ablation_keyed_conflicts,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    print_figure,
    run_standalone,
)
from repro.bench.harness import StandaloneConfig
from repro.core import COS_ALGORITHMS
from repro.net.cli import add_net_parser, run_net
from repro.sim import PROFILES
from repro.smr.sim_cluster import SimClusterConfig, run_sim_cluster

__all__ = ["main"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--algorithm", "--scheduler", default="lock-free",
                        choices=COS_ALGORITHMS,
                        help="COS scheduler (--scheduler is an alias; "
                             "'early'/'early-batched' compile the conflict "
                             "classes to worker sets at configuration time)")
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--profile", default="light",
                        choices=sorted(PROFILES))
    parser.add_argument("--write-pct", type=float, default=0.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--measure-ops", type=int, default=5000)
    parser.add_argument("--obs", action="store_true",
                        help="record the run through the observability "
                             "registry and print its snapshot "
                             "(docs/observability.md)")
    parser.add_argument("--engine", default="sim",
                        choices=("sim", "threaded", "mp"),
                        help="'sim' runs the discrete-event simulator "
                             "(the paper's figures); 'threaded'/'mp' run "
                             "real wall-clock execution, 'mp' on the "
                             "shard-per-process engine "
                             "(docs/parallel_execution.md)")
    parser.add_argument("--mp-workers", type=int, default=2,
                        help="shard worker processes with --engine mp")
    parser.add_argument("--key-dist", default="uniform",
                        choices=("uniform", "zipf"),
                        help="workload key distribution (zipf = skewed, "
                             "YCSB-style)")
    parser.add_argument("--zipf-s", type=float, default=0.99,
                        help="Zipf exponent for --key-dist zipf")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Boosting concurrency in Parallel "
                    "State Machine Replication' (Middleware '19)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("names", nargs="*",
                         choices=["fig2", "fig3", "fig4", "fig5", "fig6", []],
                         help="figures to run (default: all)")
    figures.add_argument("--full", action="store_true",
                         help="paper's full parameter grids")
    figures.add_argument("--plot", action="store_true",
                         help="render ASCII charts instead of tables")

    standalone = sub.add_parser(
        "standalone", help="one standalone data-structure run (paper §7.3)")
    _add_common(standalone)

    smr = sub.add_parser(
        "smr", help="one simulated SMR cluster run (paper §7.4)")
    _add_common(smr)
    smr.add_argument("--clients", type=int, default=200)
    smr.add_argument("--speculative", action="store_true",
                     help="optimistic execution over the sequencer fast "
                          "path: execute on optimistic delivery, commit or "
                          "roll back on the conservative order "
                          "(docs/speculation.md); with --engine sim runs "
                          "the speculation DES side by side with the "
                          "conservative baseline, with --engine threaded "
                          "runs a real speculative cluster")
    smr.add_argument("--mismatch-rate", type=float, default=0.0,
                     help="forced optimistic-reorder probability in the "
                          "speculation DES (--speculative --engine sim)")

    ablations = sub.add_parser("ablations", help="run ablation sweeps")
    ablations.add_argument("--full", action="store_true")

    check = sub.add_parser(
        "check",
        help="systematic schedule-space model check against the COS spec")
    check.add_argument("--algorithm", "--scheduler", default="lock-free",
                       help="COS algorithm (underscores accepted, e.g. "
                            "lock_free; --scheduler is an alias), "
                            "paxos-lease for the leader-lease harness "
                            "(docs/ordering.md), groups-rendezvous for "
                            "the cross-partition merge harness "
                            "(docs/partitioning.md), or spec-rollback for "
                            "the optimistic commit/rollback harness "
                            "(docs/speculation.md)")
    check.add_argument("--workers", type=int, default=3)
    check.add_argument("--commands", type=int, default=5)
    check.add_argument("--max-size", type=int, default=4,
                       help="graph capacity under check")
    check.add_argument("--write-every", type=int, default=2,
                       help="every Nth command writes (0 = all reads)")
    check.add_argument("--max-schedules", type=int, default=300,
                       help="exploration budget (schedules)")
    check.add_argument("--max-steps", type=int, default=20000,
                       help="depth bound per schedule (effects)")
    check.add_argument("--no-dpor", action="store_true",
                       help="disable sleep-set pruning (naive DFS)")
    check.add_argument("--seed", type=int, default=0,
                       help="seed for the random-walk exploration stage")
    check.add_argument("--mutant", default=None,
                       help="check a seeded-bug variant (repro.check."
                            "mutants, a lease mutant from repro.check."
                            "paxos_lease, a groups mutant from "
                            "repro.check.groups_rendezvous, or a spec "
                            "mutant from repro.check.spec_rollback) "
                            "instead of the real implementation")
    check.add_argument("--replay", metavar="FILE",
                       help="re-run a recorded counterexample file instead "
                            "of exploring")
    check.add_argument("--replay-out", metavar="FILE",
                       default="repro-check-counterexample.json",
                       help="where to write a found counterexample")

    add_net_parser(sub)
    return parser


def _cmd_figures(args: argparse.Namespace) -> int:
    wanted = set(args.names) or {"fig2", "fig3", "fig4", "fig5", "fig6"}
    quick = not args.full
    show = (lambda fig: print(plot_figure(fig))) if args.plot else print_figure
    fig2_data = fig4_data = None
    if wanted & {"fig2", "fig3"}:
        fig2_data = figure2(quick=quick)
        if "fig2" in wanted:
            show(fig2_data)
    if "fig3" in wanted:
        show(figure3(quick=quick, fig2=fig2_data))
    if wanted & {"fig4", "fig5"}:
        fig4_data = figure4(quick=quick)
        if "fig4" in wanted:
            show(fig4_data)
    if "fig5" in wanted:
        show(figure5(quick=quick, fig4=fig4_data))
    if "fig6" in wanted:
        show(figure6(quick=quick))
    return 0


def _print_obs(registry) -> None:
    from repro.obs import render_text

    print("--- observability snapshot (virtual clock) ---")
    print(render_text(registry), end="")


def _cmd_standalone(args: argparse.Namespace) -> int:
    if args.engine != "sim":
        return _cmd_standalone_wallclock(args)
    registry = None
    if args.obs:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    result = run_standalone(StandaloneConfig(
        algorithm=args.algorithm,
        workers=args.workers,
        profile=PROFILES[args.profile],
        write_pct=args.write_pct,
        seed=args.seed,
        measure_ops=args.measure_ops,
        warm_ops=max(args.measure_ops // 10, 50),
        key_dist=args.key_dist,
        zipf_s=args.zipf_s,
    ), registry=registry)
    print(f"algorithm={args.algorithm} workers={args.workers} "
          f"profile={args.profile} writes={args.write_pct}%")
    print(f"throughput: {result.kops:.1f} kops/s "
          f"({result.executed} cmds in {result.virtual_time * 1e3:.1f} "
          f"virtual ms, {result.events} events)")
    if registry is not None:
        _print_obs(registry)
    return 0


def _cmd_standalone_wallclock(args: argparse.Namespace) -> int:
    """One replica on a real engine against a wall clock (--engine mp)."""
    from repro.obs import MetricsRegistry, render_text
    from repro.par.bench import MpBenchConfig, run_mp_bench

    registry = MetricsRegistry()
    result = run_mp_bench(MpBenchConfig(
        engine=args.engine,
        mp_workers=args.mp_workers,
        workers=args.workers,
        cos_algorithm=args.algorithm,
        write_pct=args.write_pct,
        key_dist=args.key_dist,
        zipf_s=args.zipf_s,
        seed=args.seed,
        measure_ops=args.measure_ops,
        warm_ops=max(args.measure_ops // 10, 50),
    ), registry=registry)
    print(f"engine={args.engine} algorithm={args.algorithm} "
          f"mp_workers={args.mp_workers} writes={args.write_pct}% "
          f"key_dist={args.key_dist}")
    print(f"throughput: {result.throughput:,.0f} cmds/s wall clock "
          f"({result.executed} cmds in {result.duration:.2f}s)")
    if args.engine == "mp":
        print(f"dispatch latency: p50 {result.dispatch_p50 * 1e6:.0f} us / "
              f"p99 {result.dispatch_p99 * 1e6:.0f} us   shard busy: "
              + " ".join(f"{busy:.2f}" for busy in result.shard_busy))
    if args.obs:
        print("--- observability snapshot (wall clock) ---")
        print(render_text(registry), end="")
    return 0


def _cmd_smr(args: argparse.Namespace) -> int:
    if args.speculative and args.engine == "sim":
        return _cmd_smr_speculative(args)
    if args.engine != "sim":
        return _cmd_smr_wallclock(args)
    registry = None
    if args.obs:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    result = run_sim_cluster(SimClusterConfig(
        algorithm=args.algorithm,
        workers=args.workers,
        profile=PROFILES[args.profile],
        write_pct=args.write_pct,
        n_clients=args.clients,
        seed=args.seed,
        measure_ops=args.measure_ops,
        warm_ops=max(args.measure_ops // 10, 50),
    ), registry=registry)
    print(f"algorithm={args.algorithm} workers={args.workers} "
          f"profile={args.profile} writes={args.write_pct}% "
          f"clients={args.clients}")
    print(f"throughput: {result.kops:.1f} kops/s   "
          f"latency: mean {result.latency_ms:.2f} ms / "
          f"p99 {result.latency_p99 * 1e3:.2f} ms")
    if registry is not None:
        _print_obs(registry)
    return 0


def _cmd_smr_speculative(args: argparse.Namespace) -> int:
    """The speculation DES: optimistic vs conservative, same workload."""
    from repro.spec.sim import SpecSimConfig, run_spec_sim

    results = {}
    for speculative in (True, False):
        results[speculative] = run_spec_sim(SpecSimConfig(
            speculative=speculative,
            n_clients=max(1, min(args.clients, 16)),
            total_commands=args.measure_ops,
            write_pct=args.write_pct or 100.0,
            mismatch_rate=args.mismatch_rate if speculative else 0.0,
            seed=args.seed,
        ))
    spec, cons = results[True], results[False]
    print(f"speculative DES: clients={spec.config.n_clients} "
          f"commands={spec.config.total_commands} "
          f"mismatch_rate={spec.config.mismatch_rate}")
    for label, result in (("speculative", spec), ("conservative", cons)):
        print(f"  {label:>12}: median "
              f"{result.latency_quantile(0.5) * 1e3:.2f} ms / p99 "
              f"{result.latency_quantile(0.99) * 1e3:.2f} ms   "
              f"throughput {result.throughput:,.0f}/s   "
              f"match {result.match_rate:.1%}   "
              f"rollbacks {result.rollbacks}")
    ratio = (spec.latency_quantile(0.5) / cons.latency_quantile(0.5)
             if cons.latency_quantile(0.5) else 0.0)
    print(f"  median latency ratio (speculative/conservative): {ratio:.2f}")
    # Replicas must agree within each mode; across modes the closed-loop
    # pacing interleaves clients differently, so orders legitimately differ.
    identical = (all(s == spec.snapshots[0] for s in spec.snapshots)
                 and all(s == cons.snapshots[0] for s in cons.snapshots))
    print(f"  replica states identical within each mode: {identical}")
    return 0 if identical else 1


def _cmd_smr_wallclock(args: argparse.Namespace) -> int:
    """A real threaded cluster on a selectable engine (--engine mp)."""
    from repro.par.bench import MpClusterConfig, run_mp_cluster

    result = run_mp_cluster(MpClusterConfig(
        engine=args.engine,
        mp_workers=args.mp_workers,
        speculative=args.speculative,
        workers=args.workers,
        cos_algorithm=args.algorithm,
        write_pct=args.write_pct,
        key_dist=args.key_dist,
        zipf_s=args.zipf_s,
        seed=args.seed,
        ops=args.measure_ops,
        n_clients=min(args.clients, 16),
    ))
    print(f"engine={args.engine} algorithm={args.algorithm} "
          f"mp_workers={args.mp_workers} writes={args.write_pct}% "
          f"clients={result.config.n_clients}")
    print(f"throughput: {result.throughput:,.0f} cmds/s wall clock   "
          f"batch latency: mean {result.latency_mean * 1e3:.1f} ms / "
          f"p99 {result.latency_p99 * 1e3:.1f} ms   "
          f"({result.executed} executed, {result.errors} timed out)")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check import CheckConfig, run_check
    from repro.check.groups_rendezvous import GROUPS_MUTANTS, replay_groups
    from repro.check.paxos_lease import (
        LEASE_MUTANTS,
        replay_harness_kind,
        replay_lease,
    )
    from repro.check.replay import replay as replay_file
    from repro.check.replay import save_replay
    from repro.check.spec_rollback import SPEC_MUTANTS, replay_spec

    if args.replay:
        try:
            # Lease/groups/spec-harness replays carry a "harness" key; COS
            # replays (version-1 format) have none — dispatch on it.
            kind = replay_harness_kind(args.replay)
            if kind == "paxos-lease":
                violation = replay_lease(args.replay)
            elif kind == "groups-rendezvous":
                violation = replay_groups(args.replay)
            elif kind == "spec-rollback":
                violation = replay_spec(args.replay)
            else:
                violation = replay_file(args.replay, max_steps=args.max_steps)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: cannot replay {args.replay}: {error}",
                  file=sys.stderr)
            return 2
        if violation is None:
            print(f"replay {args.replay}: no violation (schedule now passes)")
            return 0
        print(f"replay {args.replay}: reproduced {violation.describe()}")
        return 1

    algorithm = args.algorithm.replace("_", "-")
    if algorithm == "paxos-lease" or args.mutant in LEASE_MUTANTS:
        return _cmd_check_lease(args)
    if algorithm == "groups-rendezvous" or args.mutant in GROUPS_MUTANTS:
        return _cmd_check_groups(args)
    if algorithm == "spec-rollback" or args.mutant in SPEC_MUTANTS:
        return _cmd_check_spec(args)

    config = CheckConfig(
        algorithm=args.algorithm.replace("_", "-"),
        workers=args.workers,
        commands=args.commands,
        max_size=args.max_size,
        write_every=args.write_every,
        mutant=args.mutant,
    )
    try:
        report = run_check(
            config,
            max_schedules=args.max_schedules,
            max_steps=args.max_steps,
            use_sleep_sets=not args.no_dpor,
            seed=args.seed,
        )
    except ValueError as error:  # unknown algorithm / unknown mutant
        print(f"error: {error}", file=sys.stderr)
        return 2
    mutant = f" mutant={config.mutant}" if config.mutant else ""
    print(f"check algorithm={config.algorithm}{mutant} "
          f"workers={config.workers} commands={config.commands} "
          f"max_size={config.max_size}")
    print(report.result.describe())
    if report.ok:
        return 0
    if report.shrunk is not None:
        shrunk = report.shrunk
        print(f"shrunk counterexample: {len(shrunk.decisions)} decisions, "
              f"{shrunk.context_switches} context switches "
              f"({shrunk.candidates_tried} candidates tried)")
        save_replay(args.replay_out, config, shrunk.decisions,
                    shrunk.violation)
        print(f"replay file written to {args.replay_out} "
              f"(re-run with: python -m repro check --replay "
              f"{args.replay_out})")
    return 1


def _cmd_check_lease(args: argparse.Namespace) -> int:
    """The paxos-lease harness branch of ``repro check``.

    Selected by ``--algorithm paxos-lease`` or any ``--mutant`` from the
    lease registry; explores seeded random-walk schedules over the lease
    protocol instead of COS thread interleavings (repro.check.paxos_lease).
    """
    from repro.check.paxos_lease import (
        LeaseCheckConfig,
        run_lease_check,
        save_lease_replay,
    )

    config = LeaseCheckConfig(mutant=args.mutant)
    try:
        report = run_lease_check(
            config, max_schedules=args.max_schedules, seed=args.seed)
    except ValueError as error:  # unknown mutant
        print(f"error: {error}", file=sys.stderr)
        return 2
    mutant = f" mutant={config.mutant}" if config.mutant else ""
    print(f"check algorithm=paxos-lease{mutant} nodes={config.n_nodes} "
          f"lease={config.lease_duration}s margin={config.lease_margin}s "
          f"skew={config.clock_skew}")
    print(report.describe())
    if report.ok:
        return 0
    if report.shrunk_decisions is not None:
        print(f"shrunk counterexample: {len(report.shrunk_decisions)} "
              f"decisions ({report.shrink_candidates} candidates tried)")
        save_lease_replay(args.replay_out, config, report.shrunk_decisions,
                          report.violation)
        print(f"replay file written to {args.replay_out} "
              f"(re-run with: python -m repro check --replay "
              f"{args.replay_out})")
    return 1


def _cmd_check_groups(args: argparse.Namespace) -> int:
    """The groups-rendezvous harness branch of ``repro check``.

    Selected by ``--algorithm groups-rendezvous`` or any ``--mutant`` from
    the groups registry; explores seeded random walks over per-replica
    interleavings of the partitions' consensus logs and checks that the
    rendezvous merge rule yields one deterministic total order
    (repro.check.groups_rendezvous, docs/partitioning.md).
    """
    from repro.check.groups_rendezvous import (
        GroupsCheckConfig,
        run_groups_check,
        save_groups_replay,
    )

    config = GroupsCheckConfig(mutant=args.mutant)
    try:
        report = run_groups_check(
            config, max_schedules=args.max_schedules, seed=args.seed)
    except ValueError as error:  # unknown mutant
        print(f"error: {error}", file=sys.stderr)
        return 2
    mutant = f" mutant={config.mutant}" if config.mutant else ""
    print(f"check algorithm=groups-rendezvous{mutant} "
          f"groups={config.n_groups} replicas={config.n_replicas} "
          f"keys={config.key_space} length={config.schedule_length}")
    print(report.describe())
    if report.ok:
        return 0
    if report.shrunk_decisions is not None:
        print(f"shrunk counterexample: {len(report.shrunk_decisions)} "
              f"decisions ({report.shrink_candidates} candidates tried)")
        save_groups_replay(args.replay_out, config, report.shrunk_decisions,
                           report.violation)
        print(f"replay file written to {args.replay_out} "
              f"(re-run with: python -m repro check --replay "
              f"{args.replay_out})")
    return 1


def _cmd_check_spec(args: argparse.Namespace) -> int:
    """The spec-rollback harness branch of ``repro check``.

    Selected by ``--algorithm spec-rollback`` or any ``--mutant`` from the
    spec registry; explores seeded random walks over per-replica
    optimistic delivery orders and checks the commit/rollback rule
    against a sequential reference execution of the conservative order
    (repro.check.spec_rollback, docs/speculation.md).
    """
    from repro.check.spec_rollback import (
        SpecCheckConfig,
        run_spec_check,
        save_spec_replay,
    )

    config = SpecCheckConfig(mutant=args.mutant)
    try:
        report = run_spec_check(
            config, max_schedules=args.max_schedules, seed=args.seed)
    except ValueError as error:  # unknown mutant
        print(f"error: {error}", file=sys.stderr)
        return 2
    mutant = f" mutant={config.mutant}" if config.mutant else ""
    print(f"check algorithm=spec-rollback{mutant} "
          f"replicas={config.n_replicas} keys={config.key_space} "
          f"length={config.schedule_length}")
    print(report.describe())
    if report.ok:
        return 0
    if report.shrunk_decisions is not None:
        print(f"shrunk counterexample: {len(report.shrunk_decisions)} "
              f"decisions ({report.shrink_candidates} candidates tried)")
        save_spec_replay(args.replay_out, config, report.shrunk_decisions,
                         report.violation)
        print(f"replay file written to {args.replay_out} "
              f"(re-run with: python -m repro check --replay "
              f"{args.replay_out})")
    return 1


def _cmd_ablations(args: argparse.Namespace) -> int:
    quick = not args.full
    for runner in (ablation_graph_size, ablation_batch_size,
                   ablation_keyed_conflicts, ablation_handoff_cost,
                   ablation_class_scheduler):
        print_figure(runner(quick=quick))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "figures": _cmd_figures,
        "standalone": _cmd_standalone,
        "smr": _cmd_smr,
        "ablations": _cmd_ablations,
        "check": _cmd_check,
        "net": run_net,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
