"""Regenerates paper Fig. 6: latency vs throughput (moderate, 5%/10% writes).

Expected shape (§7.4.2): all techniques show similar, flat latency until
the system approaches saturation, then latency rises abruptly; the
lock-free scheduler saturates at the highest throughput.
"""

from conftest import emit

from repro.bench import figure6


def test_figure6(benchmark):
    figure = benchmark.pedantic(figure6, rounds=1, iterations=1)
    emit(figure)
    for panel, series in figure.panels.items():
        for label, points in series.items():
            lats = [latency for _, latency in points]
            # Latency rises toward saturation: the last (highest-load)
            # point must be the most expensive region of the curve.
            assert max(lats) == lats[-1] or max(lats) / lats[-1] < 1.5, (
                panel, label)
        peak = {label: max(x for x, _ in points)
                for label, points in series.items()}
        lock_free = next(v for k, v in peak.items() if "lock-free" in k)
        assert lock_free >= max(peak.values()) * 0.95, panel
