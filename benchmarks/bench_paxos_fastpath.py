"""Multi-Paxos fast path: cumulative acks and leaseholder reads.

Two panels, one per fast-path mechanism (docs/ordering.md):

* **messages** — three pure :class:`~repro.broadcast.paxos.MultiPaxos`
  nodes in a deterministic loopback driver decide ~400 single-command
  instances with cumulative acks on vs off.  With per-instance acks every
  decision costs a Decide broadcast on top of the Accept round; with
  cumulative acks the commit frontier piggybacks on the next Accept (or
  heartbeat), so the Decide round disappears from the steady state.  The
  figure reports protocol messages per decided command; the gate requires
  cumulative mode to cut messages by at least 30% (the paper-shaped
  arithmetic says 1/3: 6 messages per instance down to 4 at n=3).

* **lease-reads** — a 3-replica :class:`~repro.net.cluster.TcpCluster`
  on loopback TCP serves single-command read-only batches from a pool of
  two closed-loop clients, with ``lease_reads`` on vs off.  With leases
  the leaseholder answers from local state (one client->leader round
  trip, zero protocol messages); without, every read runs a full
  consensus round, so concurrent readers serialize behind Accept rounds
  while leased reads pipeline with the client round trips.  The gate
  requires the leased read path to be at least 3x the ordered baseline
  (full mode; smoke just requires it to win).

Run as a pytest benchmark (``pytest benchmarks/bench_paxos_fastpath.py``)
or directly (``python benchmarks/bench_paxos_fastpath.py [--smoke]``).
Results land in ``benchmarks/results/paxos_fastpath.txt`` and the
machine-readable ``BENCH_paxos_fastpath.json``.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import deque

sys.path.insert(0, os.path.dirname(__file__))  # conftest when run directly

from conftest import emit

from repro.bench import FigureData
from repro.broadcast.messages import Deliver, Send
from repro.broadcast.paxos import HEARTBEAT_TIMER, MultiPaxos
from repro.core.command import Command
from repro.net.cluster import TcpCluster

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

#: Instances decided per message-count run (panel A).
PAYLOADS = 80 if SMOKE else (1_200 if FULL else 400)
#: Read commands timed per mode, split across the client pool (panel B).
READS = 40 if SMOKE else (1_600 if FULL else 400)
#: Closed-loop clients issuing reads concurrently (panel B).  Two is
#: deliberate: enough for leased reads to pipeline with client round
#: trips, few enough that leader batching cannot amortize the ordered
#: baseline's consensus rounds away.
CLIENTS = 2

#: Best-of-N timing samples per mode (first pass warms connections and
#: dedup state; same methodology as bench_wire_codec).
SAMPLES = 3

#: Fraction of protocol messages cumulative acks must shave off.
MESSAGE_GATE = 0.30
#: Leased reads must be at least this many times the ordered baseline.
READ_GATE = 3.0


# --------------------------------------------------------------- messages

class _Loopback:
    """Deterministic in-memory network around three pure protocol nodes.

    Virtual zero clock and ``lease_duration=0`` keep leases (and their
    heartbeat-ack grants) out of the message count; ``batch_size=1``
    makes "messages per decided command" exact rather than amortized.
    """

    def __init__(self, cumulative: bool):
        self.nodes = [
            MultiPaxos(node_id, 3, batch_size=1, pipeline=64,
                       propose_linger=0.0, cumulative_acks=cumulative,
                       lease_duration=0.0, clock=lambda: 0.0)
            for node_id in range(3)
        ]
        self.network = deque()
        self.delivered = [0, 0, 0]
        for node_id, node in enumerate(self.nodes):
            self._absorb(node_id, node.start())

    def _absorb(self, node_id: int, actions) -> None:
        for action in actions:
            if isinstance(action, Send):
                self.network.append((node_id, action.dst, action.msg))
            elif isinstance(action, Deliver):
                self.delivered[node_id] += len(action.payload)

    def _flush(self) -> None:
        while self.network:
            src, dst, msg = self.network.popleft()
            self._absorb(dst, self.nodes[dst].on_message(src, msg))

    def run(self, payloads: int) -> dict:
        for index in range(payloads):
            self._absorb(0, self.nodes[0].submit(f"w{index}"))
            self._flush()
            # The steady-state heartbeat cadence (one beat per ~16
            # instances here) carries the commit frontier to followers in
            # cumulative mode; both modes pay the same beat cost.
            if index % 16 == 15:
                self._absorb(0, self.nodes[0].on_timer(HEARTBEAT_TIMER))
                self._flush()
        for _ in range(8):
            self._absorb(0, self.nodes[0].on_timer(HEARTBEAT_TIMER))
            self._flush()
            if all(count == payloads for count in self.delivered):
                break
        assert all(count == payloads for count in self.delivered), (
            f"loopback run did not converge: {self.delivered}")
        total = sum(node.msgs_sent for node in self.nodes)
        return {
            "payloads": payloads,
            "messages": total,
            "msgs_per_decide": total / payloads,
        }


def measure_messages() -> dict:
    results = {
        mode: _Loopback(cumulative).run(PAYLOADS)
        for mode, cumulative in (("cumulative", True),
                                 ("per-instance", False))
    }
    off = results["per-instance"]["messages"]
    on = results["cumulative"]["messages"]
    results["saved_fraction"] = (off - on) / off
    return results


# ------------------------------------------------------------- lease reads

def _read(key: int) -> Command:
    return Command("contains", (key,), writes=False)


def measure_lease_reads() -> dict:
    results = {}
    per_client = max(1, READS // CLIENTS)
    reads = per_client * CLIENTS
    for mode, lease_reads in (("leased", True), ("ordered", False)):
        with TcpCluster(n_replicas=3, protocol="paxos",
                        lease_reads=lease_reads) as cluster:
            clients = [cluster.client(contact=0) for _ in range(CLIENTS)]
            clients[0].execute(Command("add", (904_000,), writes=True))
            assert cluster.wait_converged(1)
            # Let a heartbeat round trip establish the quorum lease
            # before timing; the ordered baseline just idles here.
            time.sleep(0.2)

            def read_loop(client) -> None:
                for _ in range(per_client):
                    # Key 0 sits at the list head: an O(1) read, so the
                    # panel times the ordering path, not list traversal.
                    client.execute(_read(0))

            best = float("inf")
            for _ in range(SAMPLES):
                threads = [threading.Thread(target=read_loop, args=(client,))
                           for client in clients]
                begun = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                best = min(best, time.perf_counter() - begun)
            served = cluster.servers[0].node.protocol.lease_reads_served
        total = reads * SAMPLES
        if lease_reads:
            assert served >= total * 0.9, (
                f"leased mode served only {served}/{total} reads locally")
        else:
            assert served == 0, (
                f"ordered baseline served {served} lease reads")
        results[mode] = {
            "reads": reads,
            "clients": CLIENTS,
            "samples": SAMPLES,
            "best_seconds": best,
            "reads_per_sec": reads / best,
            "lease_reads_served": served,
        }
    results["speedup"] = (results["leased"]["reads_per_sec"]
                          / results["ordered"]["reads_per_sec"])
    return results


def measure_lease_reads_best(attempts: int = 3) -> dict:
    """Best panel-B pass out of up to ``attempts``.

    The ratio of two wall-clock throughputs on a shared host is noisy
    (thread placement re-rolls per cluster incarnation), so the gate asks
    a capability question — *can* the leased path demonstrate its win —
    and best-of-attempts is the estimator for that.  Every pass's speedup
    is recorded alongside the winning pass.
    """
    target = 1.0 if SMOKE else READ_GATE
    best = None
    speedups = []
    for _ in range(attempts):
        candidate = measure_lease_reads()
        speedups.append(candidate["speedup"])
        if best is None or candidate["speedup"] > best["speedup"]:
            best = candidate
        if best["speedup"] >= target:
            break
    best["attempt_speedups"] = speedups
    return best


# ------------------------------------------------------------------ figure

def paxos_fastpath_figure() -> FigureData:
    figure = FigureData(
        name="paxos_fastpath",
        title="Multi-Paxos fast path: cumulative acks and lease reads "
              "(3 replicas)",
        x_label="panel (0=msgs/decide, 1=reads/s)",
        y_label="messages per decide / reads per second",
    )
    messages = measure_messages()
    reads = measure_lease_reads_best()
    figure.add_point("messages", "cumulative", 0,
                     messages["cumulative"]["msgs_per_decide"])
    figure.add_point("messages", "per-instance", 0,
                     messages["per-instance"]["msgs_per_decide"])
    figure.add_point("lease-reads", "leased", 1,
                     reads["leased"]["reads_per_sec"])
    figure.add_point("lease-reads", "ordered", 1,
                     reads["ordered"]["reads_per_sec"])
    figure.extra = {
        "messages": messages,
        "lease_reads": reads,
        "smoke": SMOKE,
        "gates": {"message_saving": MESSAGE_GATE, "read_speedup": READ_GATE},
    }
    return figure


def _check_gate(figure: FigureData) -> None:
    messages = figure.extra["messages"]
    reads = figure.extra["lease_reads"]
    print(f"[paxos_fastpath] msgs/decide: "
          f"{messages['cumulative']['msgs_per_decide']:.2f} cumulative vs "
          f"{messages['per-instance']['msgs_per_decide']:.2f} per-instance "
          f"({messages['saved_fraction']:.1%} saved); "
          f"lease reads {reads['speedup']:.2f}x ordered baseline")
    # The message count is deterministic (virtual clock, lossless FIFO
    # loopback): gate it at full strength even in smoke.
    assert messages["saved_fraction"] >= MESSAGE_GATE, (
        f"cumulative acks saved only {messages['saved_fraction']:.1%} of "
        f"protocol messages; the gate is {MESSAGE_GATE:.0%}")
    if SMOKE:
        # Wall-clock throughput over loopback TCP is too noisy on a
        # 40-read smoke run for the 3x gate; require an outright win.
        assert reads["speedup"] > 1.0, (
            f"leased reads are slower than ordered reads even in smoke "
            f"({reads['speedup']:.2f}x)")
        return
    assert reads["speedup"] >= READ_GATE, (
        f"leased reads are only {reads['speedup']:.2f}x the ordered "
        f"baseline; the gate is {READ_GATE}x")


def test_paxos_fastpath(benchmark):
    figure = benchmark.pedantic(paxos_fastpath_figure, rounds=1, iterations=1)
    emit(figure)
    _check_gate(figure)


def main() -> int:
    global SMOKE, PAYLOADS, READS
    if "--smoke" in sys.argv[1:]:
        SMOKE, PAYLOADS, READS = True, 80, 40
    figure = paxos_fastpath_figure()
    emit(figure)
    _check_gate(figure)
    return 0


if __name__ == "__main__":
    sys.exit(main())
