"""Regenerates paper Fig. 5: SMR throughput vs write percentage.

Headline shape (§7.4.2): for light and moderate execution costs the
sequential SMR overtakes the parallel techniques as the write share grows
(the paper puts the crossover near 25% writes for the lock-free graph);
for heavy costs, parallelism wins almost everywhere.
"""

from conftest import emit

from repro.bench import figure5


def test_figure5(benchmark):
    figure = benchmark.pedantic(figure5, rounds=1, iterations=1)
    emit(figure)
    for panel in ("light", "moderate"):
        series = figure.panels[panel]
        sequential = dict(series["sequential SMR"])
        lock_free = dict(next(v for k, v in series.items() if "lock-free" in k))
        xs = sorted(sequential)
        # Lock-free wins read-only; sequential wins write-only: a crossover
        # exists somewhere in between (paper: around >= 25%).
        assert lock_free[xs[0]] > sequential[xs[0]], panel
        assert sequential[xs[-1]] >= lock_free[xs[-1]] * 0.9, panel
