"""Regenerates paper Fig. 2: standalone throughput vs worker count.

Expected shape (paper §7.3.1): the lock-free scheduler scales with workers
until it saturates the insert thread (~490 kops/s light); coarse- and
fine-grained plateau much earlier, with coarse above fine in most
read-only settings; under heavy execution costs all techniques converge
toward the execution-bound limit, with fine-grained trailing.
"""

from conftest import emit

from repro.bench import figure2


def test_figure2(benchmark):
    figure = benchmark.pedantic(figure2, rounds=1, iterations=1)
    emit(figure)
    light = figure.panels["light"]
    # Headline claims: lock-free wins at scale and exceeds the others by a
    # wide margin (paper: >2.5x in some cases).
    at64 = {label: dict(points)[64] for label, points in light.items()}
    assert at64["lock-free"] > at64["coarse-grained"] > at64["fine-grained"]
    assert at64["lock-free"] / at64["fine-grained"] > 1.8
