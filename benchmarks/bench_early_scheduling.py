"""Early/static scheduling vs the indexed COS: both sides of the trade.

The experiment behind docs/scheduling.md's late-vs-early section.  Early
scheduling compiles the class→worker-set map at configuration time, so
delivery is an O(1) lane append — no conflict tests, no graph edges, no
per-command index maintenance.  Two panels, both on the discrete-event
simulator with the paper's cost model (keyed conflicts, moderate
execution profile, max_size 150):

- **balanced** — uniform keys over 64 classes, workers swept upward.
  The indexed COS's throughput plateaus once the scheduler thread's
  insert path (index upkeep + CAS traffic against the removers) becomes
  the bottleneck; early scheduling's cheaper enqueue pushes the
  insert-bound ceiling past it.  Gate: early's peak beats indexed's.

- **skew** — Zipf-exponent sweep at the worker count where early wins
  the balanced panel.  A static class→lane map pins hot classes to one
  lane, so skew collapses early's effective parallelism while the
  indexed DAG keeps every non-conflicting command available to any
  worker: the panel records the crossover where early loses.  The
  batched-index variant (least-loaded homing, idle classes re-homed
  every batch) claws back part of the gap at moderate skew — and the
  panel shows it is no cure at extreme skew, where one class dominates
  regardless of where it is homed.

Run as a pytest benchmark (``pytest benchmarks/bench_early_scheduling.py``)
or directly (``python benchmarks/bench_early_scheduling.py [--smoke]``).
Results land in ``benchmarks/results/early_scheduling.txt`` and the
machine-readable ``BENCH_early_scheduling.json``.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))  # conftest when run directly

from conftest import emit

from repro.bench import FigureData
from repro.bench.harness import StandaloneConfig, run_standalone
from repro.core.command import KeyedConflicts
from repro.sim import PROFILES

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))

ALGORITHMS = ("indexed", "early", "early-batched")
#: The balanced panel sweeps workers across the indexed plateau; the
#: smoke grid keeps the endpoints the gates compare.
WORKER_SWEEP = [8, 32] if SMOKE else [8, 16, 32, 48]
#: The skew panel sweeps the Zipf exponent at this worker count — the
#: point where early wins the balanced panel, so the crossover is visible
#: inside one panel.  0.0 denotes uniform keys.
SKEW_WORKERS = 32
ZIPF_SWEEP = [0.0, 0.8] if SMOKE else [0.0, 0.8, 1.2, 1.5]
#: Moderate skew — where the batched-index rebalancer visibly helps.
RECOVERY_ZIPF_S = 0.8
WRITE_PCT = 15.0
KEY_SPACE = 64
MAX_SIZE = 150
PROFILE = "moderate"
MEASURE_OPS = 800 if SMOKE else 2_500


def _point(algorithm: str, workers: int, zipf_s: float) -> dict:
    result = run_standalone(StandaloneConfig(
        algorithm=algorithm,
        workers=workers,
        profile=PROFILES[PROFILE],
        write_pct=WRITE_PCT,
        max_size=MAX_SIZE,
        key_space=KEY_SPACE,
        key_dist="uniform" if zipf_s == 0.0 else "zipf",
        zipf_s=zipf_s or 0.99,
        measure_ops=MEASURE_OPS,
        warm_ops=max(MEASURE_OPS // 8, 100),
        conflicts=KeyedConflicts(),
    ))
    return {
        "algorithm": algorithm,
        "workers": workers,
        "zipf_s": zipf_s,
        "throughput_kops": result.kops,
    }


def early_scheduling() -> FigureData:
    figure = FigureData(
        name="early_scheduling",
        title="Early vs indexed scheduling: balanced classes and skew "
              f"(keyed, {KEY_SPACE} classes, {WRITE_PCT:.0f}% writes)",
        x_label="workers | zipf s",
        y_label="kops/s",
    )
    points = []
    balanced: dict = {algorithm: {} for algorithm in ALGORITHMS}
    for algorithm in ALGORITHMS:
        for workers in WORKER_SWEEP:
            point = _point(algorithm, workers, zipf_s=0.0)
            points.append(point)
            balanced[algorithm][workers] = point["throughput_kops"]
            figure.add_point("balanced", algorithm, workers,
                             point["throughput_kops"])
    skewed: dict = {algorithm: {} for algorithm in ALGORITHMS}
    for algorithm in ALGORITHMS:
        for zipf_s in ZIPF_SWEEP:
            if zipf_s == 0.0:
                point = dict(
                    next(p for p in points
                         if p["algorithm"] == algorithm
                         and p["workers"] == SKEW_WORKERS))
            else:
                point = _point(algorithm, SKEW_WORKERS, zipf_s)
                points.append(point)
            skewed[algorithm][zipf_s] = point["throughput_kops"]
            figure.add_point("skew", algorithm, zipf_s,
                             point["throughput_kops"])

    peaks = {algorithm: max(series.values())
             for algorithm, series in balanced.items()}
    crossover = next(
        (s for s in ZIPF_SWEEP if skewed["indexed"][s] > skewed["early"][s]),
        None)
    summary = {
        "balanced_peak_kops": peaks,
        "skew_crossover_zipf_s": crossover,
        "batched_recovery_at": {
            "zipf_s": RECOVERY_ZIPF_S,
            "early": skewed["early"].get(RECOVERY_ZIPF_S),
            "early_batched": skewed["early-batched"].get(RECOVERY_ZIPF_S),
        },
    }
    # Merged into BENCH_early_scheduling.json by conftest.emit().
    figure.extra = {
        "points": points,
        "summary": summary,
        "worker_sweep": WORKER_SWEEP,
        "zipf_sweep": ZIPF_SWEEP,
        "skew_workers": SKEW_WORKERS,
        "write_pct": WRITE_PCT,
        "key_space": KEY_SPACE,
        "max_size": MAX_SIZE,
        "profile": PROFILE,
        "measure_ops": MEASURE_OPS,
        "smoke": SMOKE,
    }
    figure.summary = summary
    figure.balanced = balanced
    figure.skewed = skewed
    return figure


def _check_gates(figure: FigureData) -> None:
    balanced, skewed = figure.balanced, figure.skewed
    early_peak = max(balanced["early"].values())
    indexed_peak = max(balanced["indexed"].values())
    assert early_peak > indexed_peak, (
        f"early peaked at {early_peak:.1f} kops vs indexed "
        f"{indexed_peak:.1f}: O(1) enqueue did not lift the insert-bound "
        f"ceiling on balanced classes")
    print(f"[early_scheduling] balanced peak: early {early_peak:.1f} kops "
          f"> indexed {indexed_peak:.1f} kops")

    top_skew = ZIPF_SWEEP[-1]
    assert skewed["early"][top_skew] < skewed["indexed"][top_skew], (
        f"early was expected to LOSE at zipf s={top_skew} "
        f"(static lanes pin the hot class); got early "
        f"{skewed['early'][top_skew]:.1f} vs indexed "
        f"{skewed['indexed'][top_skew]:.1f}")
    crossover = figure.summary["skew_crossover_zipf_s"]
    assert crossover is not None, "no crossover found in the zipf sweep"
    print(f"[early_scheduling] skew crossover: indexed overtakes early "
          f"at zipf s={crossover} (w={SKEW_WORKERS})")

    recovery = figure.summary["batched_recovery_at"]
    assert recovery["early_batched"] > recovery["early"], (
        f"batched-index homing did not recover at zipf "
        f"s={RECOVERY_ZIPF_S}: {recovery['early_batched']:.1f} vs "
        f"static {recovery['early']:.1f}")
    print(f"[early_scheduling] batched recovery at s={RECOVERY_ZIPF_S}: "
          f"{recovery['early_batched']:.1f} kops vs static "
          f"{recovery['early']:.1f} kops")


def test_early_scheduling(benchmark):
    figure = benchmark.pedantic(early_scheduling, rounds=1, iterations=1)
    emit(figure)
    _check_gates(figure)
    for series in figure.panels["balanced"].values():
        assert len(series) == len(WORKER_SWEEP)
    for series in figure.panels["skew"].values():
        assert len(series) == len(ZIPF_SWEEP)


def main() -> int:
    global SMOKE, WORKER_SWEEP, ZIPF_SWEEP, MEASURE_OPS
    if "--smoke" in sys.argv[1:]:
        SMOKE = True
        WORKER_SWEEP = [8, 32]
        ZIPF_SWEEP = [0.0, 0.8]
        MEASURE_OPS = 800
    figure = early_scheduling()
    emit(figure)
    _check_gates(figure)
    return 0


if __name__ == "__main__":
    sys.exit(main())
