"""Ablation benches for knobs the paper fixes by fiat (see DESIGN.md)."""

from conftest import emit

from repro.bench import (
    ablation_batch_size,
    ablation_graph_size,
    ablation_handoff_cost,
    ablation_keyed_conflicts,
    quick_mode_default,
)


def test_ablation_graph_size(benchmark):
    figure = benchmark.pedantic(
        ablation_graph_size, args=(quick_mode_default(),), rounds=1, iterations=1)
    emit(figure)
    lock_free = dict(figure.panels["light"]["lock-free"])
    # A tiny graph starves the workers (no look-ahead past write barriers);
    # the paper's 150 is comfortably past the knee.
    assert lock_free[150] > lock_free[5]


def test_ablation_batch_size(benchmark):
    figure = benchmark.pedantic(
        ablation_batch_size, args=(quick_mode_default(),), rounds=1, iterations=1)
    emit(figure)
    curve = dict(figure.panels["light"]["lock-free, 8 workers"])
    assert curve[16] >= curve[1]  # batching amortizes per-instance cost


def test_ablation_keyed_conflicts(benchmark):
    figure = benchmark.pedantic(
        ablation_keyed_conflicts, args=(quick_mode_default(),),
        rounds=1, iterations=1)
    emit(figure)
    series = figure.panels["moderate"]
    rw = dict(series["readers-writers"])
    keyed = dict(series["keyed (1k keys)"])
    # Keyed conflicts keep write-heavy workloads parallel.
    assert keyed[100] > rw[100] * 2


def test_ablation_handoff_cost(benchmark):
    figure = benchmark.pedantic(
        ablation_handoff_cost, args=(quick_mode_default(),),
        rounds=1, iterations=1)
    emit(figure)
    coarse = dict(figure.panels["light"]["coarse-grained"])
    xs = sorted(coarse)
    # The coarse-grained graph lives and dies by the hand-off cost.
    assert coarse[xs[0]] > coarse[xs[-1]]


def test_ablation_class_scheduler(benchmark):
    from repro.bench import ablation_class_scheduler

    figure = benchmark.pedantic(
        ablation_class_scheduler, args=(quick_mode_default(),),
        rounds=1, iterations=1)
    emit(figure)
    series = figure.panels["light"]
    dag = dict(series["lock-free DAG"])
    one_shard = dict(series["class-based, 1 shard"])
    sharded = dict(series["class-based, 16 shards"])
    # One class serializes reads: the DAG wins read-only workloads.
    assert dag[0] > one_shard[0] * 1.5
    # Sharding recovers read parallelism.
    assert sharded[0] > one_shard[0]
