"""Regenerates paper Fig. 3: standalone throughput vs write percentage.

Each technique runs at its best worker count from Fig. 2 (the paper's own
protocol).  Expected shape (§7.3.2): all parallel techniques degrade as
writes rise; the lock-free scheduler dominates the low-write region that
the paper argues is the realistic one (0.3%-2% conflicts).
"""

from conftest import emit

from repro.bench import figure3


def test_figure3(benchmark):
    figure = benchmark.pedantic(figure3, rounds=1, iterations=1)
    emit(figure)
    for panel, series in figure.panels.items():
        for label, points in series.items():
            curve = dict(points)
            # Write-heavy must not beat read-only for any technique.
            assert curve[100] <= curve[0] * 1.05, (panel, label)
        lock_free = next(v for k, v in series.items() if "lock-free" in k)
        coarse = next(v for k, v in series.items() if "coarse" in k)
        # Lock-free wins the low-write region.
        assert dict(lock_free)[0] >= dict(coarse)[0]
