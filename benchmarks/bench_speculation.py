"""Optimistic (speculative) execution: latency hidden, cost bounded.

Two panels on the speculation DES (:mod:`repro.spec.sim` — the real
:class:`~repro.broadcast.sequencer.SequencerBroadcast` machines and the
real :class:`~repro.spec.engine.SpeculationEngine` on the virtual clock,
so both panels are deterministic and the gates run at full strength even
in smoke):

* **latency** — one closed-loop client, execution 3 ms, ordering delay
  3 ms (the consensus round the optimistic delivery front-runs).  A
  follower that executes speculatively overlaps execution with the
  ordering delay and releases the response the instant the conservative
  order confirms; the conservative baseline only *starts* executing
  then.  The gate requires speculative median latency <= 0.6x the
  conservative median at a >=95% optimistic match rate (arXiv 1404.6721's
  regime: optimistic delivery is almost always right).

* **mismatch-cost** — four closed-loop clients in an ordering-bound
  regime (execution 0.5 ms against a 3 ms ordering delay) with a seeded
  50% adjacent-swap injected into every replica's optimistic delivery
  stream.  Every swap that lands forces a rollback: undo the divergent
  suffix, re-execute conservatively, re-speculate the rest — roughly
  doubling the executed work (the recorded ``work_ratio`` makes that
  transparent).  The gate bounds the *throughput* cost: the conservative
  baseline may be at most 1.3x the mismatching speculative run, i.e.
  even losing half its guesses the pipeline stays within 30% of never
  speculating at all.  (In an execution-bound regime the re-execution
  work would bite harder — docs/speculation.md §When speculation loses.)

Every run doubles as a differential check: the DES raises if replicas
diverge, and both panels assert all replicas end bit-identical.

Run as a pytest benchmark (``pytest benchmarks/bench_speculation.py``)
or directly (``python benchmarks/bench_speculation.py [--smoke]``).
Results land in ``benchmarks/results/speculation.txt`` and the
machine-readable ``BENCH_speculation.json``.
"""

from __future__ import annotations

import dataclasses
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))  # conftest when run directly

from conftest import emit

from repro.bench import FigureData
from repro.spec.sim import SpecSimConfig, SpecSimResult, run_spec_sim

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

#: Commands per latency run (panel A; one closed-loop client).
LATENCY_COMMANDS = 120 if SMOKE else (1_200 if FULL else 400)
#: Commands per mismatch run (panel B; four closed-loop clients).
MISMATCH_COMMANDS = 200 if SMOKE else (1_800 if FULL else 600)

#: Speculative median latency must be at most this fraction of the
#: conservative median (panel A).
LATENCY_GATE = 0.6
#: ...at at least this optimistic match rate.
MATCH_GATE = 0.95
#: Conservative throughput may be at most this multiple of the
#: 50%-mismatch speculative throughput (panel B).
MISMATCH_COST_GATE = 1.3

#: Forced adjacent-swap probability for panel B.
MISMATCH_RATE = 0.5

_MS = 1e-3

#: Panel A: execution as long as the ordering delay — the regime
#: speculation is built for (overlap hides the whole execution).
LATENCY_CONFIG = SpecSimConfig(
    n_clients=1,
    total_commands=LATENCY_COMMANDS,
    exec_cost=3.0 * _MS,
    ordering_delay=3.0 * _MS,
    seed=2,
)

#: Panel B: ordering-bound (execution << ordering delay), so the gate
#: isolates the protocol cost of rollbacks rather than lane saturation.
MISMATCH_CONFIG = SpecSimConfig(
    n_clients=4,
    total_commands=MISMATCH_COMMANDS,
    exec_cost=0.5 * _MS,
    undo_cost=0.05 * _MS,
    ordering_delay=3.0 * _MS,
    seed=2,
)


def _run(config: SpecSimConfig, **overrides) -> SpecSimResult:
    result = run_spec_sim(dataclasses.replace(config, **overrides))
    assert all(snapshot == result.snapshots[0]
               for snapshot in result.snapshots), (
        "replica states diverged — the DES differential oracle failed")
    return result


def _summarize(result: SpecSimResult) -> dict:
    return {
        "median_latency_ms": result.latency_quantile(0.5) * 1e3,
        "p99_latency_ms": result.latency_quantile(0.99) * 1e3,
        "throughput_per_sec": result.throughput,
        "match_rate": result.match_rate,
        "rollbacks": result.rollbacks,
        "work_ratio": (result.executions / result.committed
                       if result.committed else 0.0),
        "committed": result.committed,
    }


def measure_latency() -> dict:
    speculative = _run(LATENCY_CONFIG, speculative=True)
    conservative = _run(LATENCY_CONFIG, speculative=False)
    ratio = (speculative.latency_quantile(0.5)
             / conservative.latency_quantile(0.5))
    return {
        "speculative": _summarize(speculative),
        "conservative": _summarize(conservative),
        "median_ratio": ratio,
        "match_rate": speculative.match_rate,
    }


def measure_mismatch_cost() -> dict:
    mismatching = _run(MISMATCH_CONFIG, speculative=True,
                       mismatch_rate=MISMATCH_RATE)
    clean = _run(MISMATCH_CONFIG, speculative=True)
    conservative = _run(MISMATCH_CONFIG, speculative=False)
    return {
        "mismatching": _summarize(mismatching),
        "clean": _summarize(clean),
        "conservative": _summarize(conservative),
        "mismatch_rate": MISMATCH_RATE,
        "cost_vs_conservative": (conservative.throughput
                                 / mismatching.throughput),
        "cost_vs_clean": clean.throughput / mismatching.throughput,
    }


# ------------------------------------------------------------------ figure

def speculation_figure() -> FigureData:
    figure = FigureData(
        name="speculation",
        title="Optimistic execution: latency hidden at high match rate, "
              "bounded cost under forced mismatch (3 replicas)",
        x_label="panel (0=median latency ms, 1=throughput/s @50% mismatch)",
        y_label="median latency ms / committed commands per second",
    )
    latency = measure_latency()
    mismatch = measure_mismatch_cost()
    figure.add_point("latency", "speculative", 0,
                     latency["speculative"]["median_latency_ms"])
    figure.add_point("latency", "conservative", 0,
                     latency["conservative"]["median_latency_ms"])
    figure.add_point("mismatch-cost", "speculative@50%", 1,
                     mismatch["mismatching"]["throughput_per_sec"])
    figure.add_point("mismatch-cost", "speculative@0%", 1,
                     mismatch["clean"]["throughput_per_sec"])
    figure.add_point("mismatch-cost", "conservative", 1,
                     mismatch["conservative"]["throughput_per_sec"])
    figure.extra = {
        "latency": latency,
        "mismatch": mismatch,
        "smoke": SMOKE,
        "gates": {
            "latency_ratio": LATENCY_GATE,
            "match_rate": MATCH_GATE,
            "mismatch_cost": MISMATCH_COST_GATE,
        },
    }
    return figure


def _check_gate(figure: FigureData) -> None:
    latency = figure.extra["latency"]
    mismatch = figure.extra["mismatch"]
    print(f"[speculation] median latency "
          f"{latency['speculative']['median_latency_ms']:.2f} ms speculative "
          f"vs {latency['conservative']['median_latency_ms']:.2f} ms "
          f"conservative ({latency['median_ratio']:.2f}x, match "
          f"{latency['match_rate']:.1%}); 50%-mismatch throughput cost "
          f"{mismatch['cost_vs_conservative']:.2f}x conservative "
          f"(work ratio {mismatch['mismatching']['work_ratio']:.2f})")
    # The DES is deterministic (virtual clock, seeded delays): both gates
    # run at full strength even in smoke.
    assert latency["match_rate"] >= MATCH_GATE, (
        f"latency panel matched only {latency['match_rate']:.1%} "
        f"optimistically; the gate needs {MATCH_GATE:.0%} for the ratio "
        f"to be meaningful")
    assert latency["median_ratio"] <= LATENCY_GATE, (
        f"speculative median latency is {latency['median_ratio']:.2f}x "
        f"the conservative median; the gate is {LATENCY_GATE}x")
    assert mismatch["cost_vs_conservative"] <= MISMATCH_COST_GATE, (
        f"conservative throughput is {mismatch['cost_vs_conservative']:.2f}x "
        f"the 50%-mismatch speculative run; the gate is "
        f"{MISMATCH_COST_GATE}x")


def test_speculation(benchmark):
    figure = benchmark.pedantic(speculation_figure, rounds=1, iterations=1)
    emit(figure)
    _check_gate(figure)


def main() -> int:
    global SMOKE, LATENCY_CONFIG, MISMATCH_CONFIG
    if "--smoke" in sys.argv[1:]:
        SMOKE = True
        LATENCY_CONFIG = dataclasses.replace(LATENCY_CONFIG,
                                             total_commands=120)
        MISMATCH_CONFIG = dataclasses.replace(MISMATCH_CONFIG,
                                              total_commands=200)
    figure = speculation_figure()
    emit(figure)
    _check_gate(figure)
    return 0


if __name__ == "__main__":
    sys.exit(main())
