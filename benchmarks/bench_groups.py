"""Partitioned scale-out: consensus-group scaling and cross-partition cost.

Three panels around the ``repro.groups`` subsystem (docs/partitioning.md):

* **scaling** — a deterministic virtual-time model of a partitioned
  deployment: every consensus group is a serial ordering pipeline that
  decides one log item per ``DELTA`` time units, and the ordered streams
  feed the *real* :class:`~repro.groups.merge.GroupMerger` via the real
  :class:`~repro.groups.partition.PartitionMap` routing over a real
  :class:`~repro.workload.generator.WorkloadGenerator` stream.  With zero
  cross-partition traffic, G groups order G items per ``DELTA``, so
  throughput should scale with the group count minus key-imbalance; the
  gate requires 4 groups to deliver at least ``SCALING_GATE``x a single
  group.  The model is deliberately sequential-bottleneck-shaped: it
  isolates what partitioning buys (parallel ordering pipelines) from what
  this host cannot show (true multi-core wall clock; see the wall panel).

* **cross** — the same model at 4 groups with 5%/20%/50% of commands
  crossing partitions.  A cross command consumes an ordering slot in
  every involved group *and* holds back every later item of those groups
  until all its markers surface, so throughput must degrade as the
  fraction grows (gated: 50% cross strictly below 0%); the panel also
  records the rendezvous hold-wait distribution (release minus first
  marker arrival, in ``DELTA`` units).

* **wall** — an honest, *ungated* wall-clock sanity panel: a real
  threaded :class:`~repro.groups.cluster.GroupedCluster` at 1 vs 2 groups
  on this host.  Under one CPython GIL on a small box, grouped ordering
  adds threads rather than cores, so no speedup is claimed or asserted —
  the number is recorded so EXPERIMENTS.md can show what the simulation
  abstracts away (see the scaling-panel caveats there).

Run as a pytest benchmark (``pytest benchmarks/bench_groups.py``) or
directly (``python benchmarks/bench_groups.py [--smoke]``).  Results land
in ``benchmarks/results/groups.txt`` and the machine-readable
``BENCH_groups.json``.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, os.path.dirname(__file__))  # conftest when run directly

from conftest import emit

from repro.bench import FigureData
from repro.core.command import Command, MultiKeyedConflicts
from repro.groups.cluster import GroupedCluster, GroupsConfig
from repro.groups.merge import GroupMerger
from repro.groups.messages import Rendezvous, rendezvous_xid
from repro.groups.partition import PartitionMap
from repro.workload import WorkloadGenerator

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

#: Commands per virtual-time model run.
COMMANDS = 2_000 if SMOKE else (40_000 if FULL else 10_000)
#: Write commands per wall-clock cluster run.
WALL_COMMANDS = 60 if SMOKE else (600 if FULL else 200)
#: Virtual seconds one consensus instance takes (the unit of the model).
DELTA = 1.0
#: 4 groups must beat 1 group by at least this factor at 0% cross.
SCALING_GATE = 2.5
GROUP_COUNTS = (1, 2, 4)
CROSS_FRACTIONS = (0.0, 0.05, 0.20, 0.50)


# ------------------------------------------------------- virtual-time model

def _generator(n_groups: int, cross: float, seed: int = 7,
               key_space: int = 4_096) -> WorkloadGenerator:
    return WorkloadGenerator(
        write_pct=100.0,
        key_space=key_space,
        seed=seed,
        client_id="bench",
        cross_partition_fraction=cross,
        n_partitions=n_groups if cross > 0 else None,
    )


def simulate(n_groups: int, cross: float,
             commands: int = COMMANDS) -> Dict[str, float]:
    """One virtual-time run; real routing + merge, modeled ordering.

    Each group decides its i-th log item at virtual time ``(i+1)*DELTA``
    (serial pipeline, all commands admitted at time zero).  Events are fed
    to one real merger in time order; an emission's release time is the
    event time that produced it, so held markers delay their group's
    backlog exactly as the merge rule dictates.
    """
    conflicts = MultiKeyedConflicts()
    partition_map = PartitionMap(conflicts, n_groups)
    generator = _generator(n_groups, cross)
    logs: List[List[object]] = [[] for _ in range(n_groups)]
    first_arrival: Dict[str, float] = {}
    n_cross = 0
    for command in generator.commands(commands):
        groups = partition_map.groups_of(command)
        if len(groups) == 1:
            logs[groups[0]].append(command)
            continue
        n_cross += 1
        marker = Rendezvous(rendezvous_xid(command), groups, command)
        for group in groups:
            logs[group].append(marker)

    events: List[Tuple[float, int, int, object]] = []
    seq = 0
    for group, log in enumerate(logs):
        for index, item in enumerate(log):
            events.append(((index + 1) * DELTA, seq, group, item))
            seq += 1
    events.sort()

    merger = GroupMerger(n_groups, conflicts=conflicts)
    released = 0
    makespan = 0.0
    waits: List[float] = []
    for now, _seq, group, item in events:
        if isinstance(item, Rendezvous):
            first_arrival.setdefault(item.xid, now)
        for emission in merger.offer(group, item):
            released += 1
            makespan = now
            if emission.xid is not None:
                waits.append(now - first_arrival[emission.xid])
    assert merger.idle(), "model run left unreleased items"
    assert released == commands, (released, commands)

    waits.sort()
    longest = max(len(log) for log in logs)
    return {
        "groups": n_groups,
        "cross_fraction": cross,
        "commands": commands,
        "cross_commands": n_cross,
        "makespan": makespan,
        "throughput": commands / makespan,
        "longest_log": longest,
        "hold_wait_mean": (sum(waits) / len(waits)) if waits else 0.0,
        "hold_wait_p95": waits[int(len(waits) * 0.95)] if waits else 0.0,
        "hold_wait_max": waits[-1] if waits else 0.0,
    }


def measure_scaling() -> Dict[str, object]:
    runs = {groups: simulate(groups, 0.0) for groups in GROUP_COUNTS}
    return {
        "runs": {str(groups): run for groups, run in runs.items()},
        "speedup_4_over_1": runs[4]["throughput"] / runs[1]["throughput"],
    }


def measure_cross() -> Dict[str, object]:
    runs = {cross: simulate(4, cross) for cross in CROSS_FRACTIONS}
    return {
        "runs": {f"{cross:.2f}": run for cross, run in runs.items()},
        "degradation_50": (runs[0.50]["throughput"]
                           / runs[0.0]["throughput"]),
    }


# ------------------------------------------------------------- wall clock

def _wall_run(n_groups: int) -> Dict[str, float]:
    config = GroupsConfig(
        n_groups=n_groups,
        n_replicas=3,
        service="linked-list-keyed",
        lease_reads=False,
    )
    # Keys enumerate the space directly; stable_hash spreads them evenly
    # over the groups, so both runs order the same single-partition load.
    commands = [Command("add", (key,), client_id=None, writes=True)
                for key in range(WALL_COMMANDS)]
    with GroupedCluster(config) as cluster:
        client = cluster.client()
        begun = time.perf_counter()
        for start in range(0, len(commands), 10):
            client.execute_batch(commands[start:start + 10])
        elapsed = time.perf_counter() - begun
        assert cluster.wait_converged(len(commands), timeout=20.0)
    return {
        "groups": n_groups,
        "commands": len(commands),
        "seconds": elapsed,
        "throughput": len(commands) / elapsed,
    }


def measure_wall() -> Dict[str, object]:
    runs = {groups: _wall_run(groups) for groups in (1, 2)}
    return {
        "runs": {str(groups): run for groups, run in runs.items()},
        "speedup_2_over_1": runs[2]["throughput"] / runs[1]["throughput"],
        "cpus": os.cpu_count(),
    }


# ------------------------------------------------------------------ figure

def groups_figure() -> FigureData:
    figure = FigureData(
        name="groups",
        title="Partitioned SMR: group scaling and cross-partition cost",
        x_label="groups (scaling) / cross fraction (cross)",
        y_label="throughput (model: cmds per DELTA; wall: cmds/s)",
    )
    scaling = measure_scaling()
    cross = measure_cross()
    wall = measure_wall()
    for groups in GROUP_COUNTS:
        figure.add_point("scaling", "model", groups,
                         scaling["runs"][str(groups)]["throughput"])
    for fraction in CROSS_FRACTIONS:
        run = cross["runs"][f"{fraction:.2f}"]
        figure.add_point("cross", "throughput", fraction, run["throughput"])
        figure.add_point("cross", "hold-wait-mean", fraction,
                         run["hold_wait_mean"])
    for groups in (1, 2):
        figure.add_point("wall", "threaded-1cpu", groups,
                         wall["runs"][str(groups)]["throughput"])
    figure.extra = {
        "scaling": scaling,
        "cross": cross,
        "wall": wall,
        "smoke": SMOKE,
        "gates": {"scaling_4_over_1": SCALING_GATE,
                  "cross_50_must_degrade": True},
    }
    return figure


def _check_gate(figure: FigureData) -> None:
    scaling = figure.extra["scaling"]
    cross = figure.extra["cross"]
    wall = figure.extra["wall"]
    print(f"[groups] model scaling 4g/1g: "
          f"{scaling['speedup_4_over_1']:.2f}x (gate {SCALING_GATE}x); "
          f"throughput at 50% cross is "
          f"{cross['degradation_50']:.2f}x the 0% baseline; "
          f"wall-clock 2g/1g on {wall['cpus']} cpu(s): "
          f"{wall['speedup_2_over_1']:.2f}x (recorded, not gated)")
    # The model is deterministic (virtual clock, seeded workload): both
    # gates run at full strength even in smoke.
    assert scaling["speedup_4_over_1"] >= SCALING_GATE, (
        f"4 groups deliver only {scaling['speedup_4_over_1']:.2f}x one "
        f"group at 0% cross; the gate is {SCALING_GATE}x")
    assert cross["degradation_50"] < 1.0, (
        f"50% cross-partition traffic did not degrade throughput "
        f"({cross['degradation_50']:.2f}x the 0% baseline)")


def test_groups(benchmark):
    figure = benchmark.pedantic(groups_figure, rounds=1, iterations=1)
    emit(figure)
    _check_gate(figure)


def main() -> int:
    global SMOKE, COMMANDS, WALL_COMMANDS
    if "--smoke" in sys.argv[1:]:
        SMOKE, COMMANDS, WALL_COMMANDS = True, 2_000, 60
    figure = groups_figure()
    emit(figure)
    _check_gate(figure)
    return 0


if __name__ == "__main__":
    sys.exit(main())
