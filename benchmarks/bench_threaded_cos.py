"""Real-time microbenchmarks of the threaded COS structures.

These measure actual wall-clock operation rates of the three schedulers on
OS threads.  Under CPython's GIL they cannot demonstrate multi-core
speedup (DESIGN.md §2) — they exist as sanity checks that the structures
sustain realistic Python-level rates and that the *relative* single-thread
overhead ordering (sequential < lock-free ≈ coarse < fine for a populated
graph) is what the algorithms predict.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import (
    NeverConflicts,
    ReadWriteConflicts,
    ThreadedCOS,
    ThreadedRuntime,
    make_cos,
)
from repro.core.command import Command

ALGORITHMS = ("coarse-grained", "fine-grained", "lock-free", "sequential")


def _cycle(cos: ThreadedCOS, commands) -> None:
    for command in commands:
        cos.insert(command)
        handle = cos.get()
        cos.remove(handle)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_single_thread_cycle(benchmark, algorithm):
    """insert+get+remove round trips on one thread, empty graph."""
    runtime = ThreadedRuntime()
    cos = ThreadedCOS(
        make_cos(algorithm, runtime, ReadWriteConflicts()), runtime)
    commands = [Command("contains", (i,), writes=False) for i in range(200)]
    benchmark(_cycle, cos, commands)


@pytest.mark.parametrize("algorithm", ("coarse-grained", "fine-grained",
                                       "lock-free"))
def test_populated_insert(benchmark, algorithm):
    """Insert cost against a graph pre-populated near its cap.

    This isolates the full-graph walk that sets each algorithm's ceiling
    in Fig. 2 (see EXPERIMENTS.md).
    """
    runtime = ThreadedRuntime()
    cos = ThreadedCOS(
        make_cos(algorithm, runtime, NeverConflicts(), max_size=200), runtime)
    for i in range(140):  # resident population
        cos.insert(Command("contains", (i,), writes=False))
    commands = [Command("contains", (i,), writes=False) for i in range(50)]

    def insert_drain():
        for command in commands:
            cos.insert(command)
        for _ in commands:
            cos.remove(cos.get())

    benchmark(insert_drain)


@pytest.mark.parametrize("algorithm", ("coarse-grained", "fine-grained",
                                       "lock-free"))
def test_two_thread_pipeline(benchmark, algorithm):
    """One producer and one consumer thread pumping 500 commands through."""
    runtime = ThreadedRuntime()
    cos = ThreadedCOS(
        make_cos(algorithm, runtime, ReadWriteConflicts(), max_size=150),
        runtime)
    n = 500

    def pump():
        def producer():
            for i in range(n):
                cos.insert(Command("contains", (i,), writes=False))

        thread = threading.Thread(target=producer)
        thread.start()
        for _ in range(n):
            cos.remove(cos.get())
        thread.join()

    benchmark(pump)
