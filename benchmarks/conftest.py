"""Shared helpers for the benchmark suite.

Each ``bench_fig*.py`` regenerates one figure of the paper.  Benchmarks run
in *quick* mode by default (trimmed grids, smaller op counts — the whole
suite finishes in a few minutes); set ``REPRO_BENCH_FULL=1`` to sweep the
paper's full parameter grids.

Every figure's ASCII table is printed and also written to
``benchmarks/results/<name>.txt`` so the numbers recorded in
EXPERIMENTS.md can be regenerated verbatim; a machine-readable
``BENCH_<name>.json`` twin (series data + provenance: git SHA, python,
CPU count) lands next to it for tooling.
"""

from __future__ import annotations

import pathlib

from repro.bench import FigureData, figure_payload, format_figure, write_bench_json

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(figure: FigureData) -> None:
    """Print a figure table and persist it under benchmarks/results/.

    A benchmark that computes headline numbers beyond the series data
    (ratios, crossovers, gate summaries) attaches them as
    ``figure.extra``; they are merged into the JSON document so the one
    ``BENCH_<name>.json`` artifact carries both.  (Benchmarks used to
    write a second document under the same name before calling emit,
    which silently overwrote it.)
    """
    text = format_figure(figure)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{figure.name}.txt").write_text(text)
    payload = figure_payload(figure)
    extra = getattr(figure, "extra", None)
    if extra:
        payload = {**payload, **extra}
    write_bench_json(figure.name, payload, str(RESULTS_DIR))
