"""Regenerates paper Fig. 4: SMR throughput vs worker count (0% writes).

Same ordering as Fig. 2 at lower absolute numbers — the ordering protocol
adds CPU and latency (§7.4.1) — plus the sequential-SMR baseline, which
every parallel technique beats once it has more than one worker.
"""

from conftest import emit

from repro.bench import figure4


def test_figure4(benchmark):
    figure = benchmark.pedantic(figure4, rounds=1, iterations=1)
    emit(figure)
    light = figure.panels["light"]
    at = {label: dict(points) for label, points in light.items()}
    sequential = at["sequential SMR"][1]
    for label in ("lock-free", "coarse-grained"):
        assert at[label][8] > sequential, label  # parallel beats sequential
    # Our fine-grained scheduler pays walk costs the paper's Java version
    # partially hides; it lands within noise of sequential at 0% writes
    # (see EXPERIMENTS.md) rather than strictly above it.
    assert at["fine-grained"][8] > sequential * 0.8
    assert at["lock-free"][64] >= at["coarse-grained"][64]
    assert at["lock-free"][64] >= at["fine-grained"][64]
