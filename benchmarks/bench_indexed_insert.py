"""Insert cost of the indexed COS vs the paper's three graph structures.

The experiment behind docs/scheduling.md: the lock-free graph's ``insert``
walks the whole arrival list (O(graph size) conflict checks), so its
scheduler-side cost grows with ``max_size``; the indexed COS touches only
the command's conflict classes (O(|footprint|)).  We sweep graph capacity
{50, 150, 600} under a keyed workload (uniform and Zipf-skewed keys) and
compare

- **insert visits per command** — ``cos_insert_visits_total`` from the
  observability registry, the structure-agnostic measure of scheduler
  work, and
- **end-to-end throughput** on the discrete-event simulator (kops/s).

The acceptance gate: at the paper's max_size of 150 the indexed COS must
do >= 3x fewer insert visits than the lock-free structure.

Run as a pytest benchmark (``pytest benchmarks/bench_indexed_insert.py``)
or directly (``python benchmarks/bench_indexed_insert.py [--smoke]``).
Results land in ``benchmarks/results/indexed_insert.txt`` and the
machine-readable ``BENCH_indexed_insert.json``.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))  # conftest when run directly

from conftest import RESULTS_DIR, emit

from repro.bench import FigureData, write_bench_json
from repro.bench.harness import StandaloneConfig, run_standalone
from repro.core.command import KeyedConflicts
from repro.obs import MetricsRegistry
from repro.sim import PROFILES

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

ALGORITHMS = ("coarse-grained", "fine-grained", "lock-free", "indexed")
#: Graph capacities swept (the paper fixes 150; 600 shows the O(n) trend).
GRAPH_SIZES = [50, 150] if SMOKE else [50, 150, 600]
KEY_DISTS = ("uniform", "zipf")
WRITE_PCT = 15.0         # the paper's mixed workload; keyed, so writes
KEY_SPACE = 1_000        # conflict only within a key's class
WORKERS = 8
#: "moderate" keeps the workers (not the scheduler) the bottleneck, so the
#: graph actually fills toward max_size and the lock-free insert's O(n)
#: walk is exposed; under "light" the graph stays near-empty and every
#: structure looks O(1).
PROFILE = "moderate"
MEASURE_OPS = 600 if SMOKE else 4_000
#: The tentpole claim checked at the paper's graph size.
MIN_VISIT_RATIO = 3.0
RATIO_AT_SIZE = 150


def _point(algorithm: str, max_size: int, key_dist: str) -> dict:
    registry = MetricsRegistry()
    result = run_standalone(StandaloneConfig(
        algorithm=algorithm,
        workers=WORKERS,
        profile=PROFILES[PROFILE],
        write_pct=WRITE_PCT,
        max_size=max_size,
        key_space=KEY_SPACE,
        key_dist=key_dist,
        measure_ops=MEASURE_OPS,
        warm_ops=max(MEASURE_OPS // 10, 50),
        conflicts=KeyedConflicts(),
    ), registry=registry)
    snapshot = registry.snapshot()
    inserts = snapshot["cos_inserts_total"]["value"]
    visits = snapshot["cos_insert_visits_total"]["value"]
    point = {
        "algorithm": algorithm,
        "max_size": max_size,
        "key_dist": key_dist,
        "inserts": inserts,
        "insert_visits": visits,
        "visits_per_insert": visits / inserts if inserts else 0.0,
        "throughput_kops": result.kops,
    }
    if algorithm == "indexed":
        point["index_hits"] = snapshot["cos_index_hits_total"]["value"]
        point["index_entries_pruned"] = (
            snapshot["cos_index_entries_pruned_total"]["value"])
    return point


def indexed_insert() -> FigureData:
    figure = FigureData(
        name="indexed_insert",
        title="Indexed COS: insert visits/command and throughput vs "
              f"graph size (keyed, {WRITE_PCT:.0f}% writes)",
        x_label="max graph size",
        y_label="visits/insert | kops/s",
    )
    points = []
    for key_dist in KEY_DISTS:
        for algorithm in ALGORITHMS:
            for max_size in GRAPH_SIZES:
                point = _point(algorithm, max_size, key_dist)
                points.append(point)
                figure.add_point(f"visits-{key_dist}", algorithm, max_size,
                                 point["visits_per_insert"])
                figure.add_point(f"kops-{key_dist}", algorithm, max_size,
                                 point["throughput_kops"])
    ratios = {}
    for key_dist in KEY_DISTS:
        per_algo = {
            p["algorithm"]: p["visits_per_insert"] for p in points
            if p["key_dist"] == key_dist and p["max_size"] == RATIO_AT_SIZE}
        indexed = per_algo.get("indexed") or 1e-12
        ratios[key_dist] = per_algo["lock-free"] / indexed
    # Merged into BENCH_indexed_insert.json by conftest.emit() — writing
    # a second document under the same name here used to be silently
    # overwritten by emit's figure payload.
    figure.extra = {
        "points": points,
        "graph_sizes": GRAPH_SIZES,
        "write_pct": WRITE_PCT,
        "key_space": KEY_SPACE,
        "workers": WORKERS,
        "measure_ops": MEASURE_OPS,
        "visit_ratio_lock_free_over_indexed_at_150": ratios,
        "min_visit_ratio_required": MIN_VISIT_RATIO,
        "smoke": SMOKE,
    }
    figure.ratios = ratios
    return figure


def _check_ratio(figure: FigureData) -> None:
    for key_dist, ratio in figure.ratios.items():
        assert ratio >= MIN_VISIT_RATIO, (
            f"indexed insert saved only {ratio:.2f}x visits vs lock-free at "
            f"max_size {RATIO_AT_SIZE} ({key_dist} keys); "
            f"expected >= {MIN_VISIT_RATIO}x")
        print(f"[indexed_insert] {key_dist}: lock-free/indexed visit ratio "
              f"at max_size {RATIO_AT_SIZE} = {ratio:.1f}x")


def test_indexed_insert(benchmark):
    figure = benchmark.pedantic(indexed_insert, rounds=1, iterations=1)
    emit(figure)
    _check_ratio(figure)
    for panel in figure.panels.values():
        for series in panel.values():
            assert len(series) == len(GRAPH_SIZES)


def main() -> int:
    global SMOKE, GRAPH_SIZES, MEASURE_OPS
    if "--smoke" in sys.argv[1:]:
        SMOKE = True
        GRAPH_SIZES = [50, 150]
        MEASURE_OPS = 600
    figure = indexed_insert()
    emit(figure)
    _check_ratio(figure)
    return 0


if __name__ == "__main__":
    sys.exit(main())
