"""Frames/sec and bytes-on-wire: binary codec vs tagged JSON.

The mixed-message panel mirrors one consensus round of a loaded cluster —
an 8-command ``Accept`` and its ``Accepted``/``Decide``, a ``Heartbeat``,
a recovery ``Promise``, and the client-facing ``ClientRequest`` /
``ClientResponse`` envelopes.  Each codec encodes and decodes the whole
panel in a loop; the figure reports frames/sec per direction plus total
bytes on the wire for one panel pass.

This benchmark *gates* the binary codec's reason to exist: the combined
encode+decode round trip must be at least 2x the JSON codec's on this
panel (it is the hot path of every replica's network loop).  The byte
ratio is reported alongside — compact framing is what shrinks the
length-prefixed frames the transport shuttles.

Run as a pytest benchmark (``pytest benchmarks/bench_wire_codec.py``) or
directly (``python benchmarks/bench_wire_codec.py [--smoke]``).  Results
land in ``benchmarks/results/wire_codec.txt`` and the machine-readable
``BENCH_wire_codec.json``.
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))  # conftest when run directly

from conftest import emit

from repro.bench import FigureData
from repro.broadcast.messages import (
    Accept,
    Accepted,
    Decide,
    Heartbeat,
    Promise,
)
from repro.core.command import Command
from repro.net.codec import WIRE_NAMES, wire_codec
from repro.net.messages import ClientRequest, ClientResponse

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

#: Panel passes per timing sample.
ITERATIONS = 50 if SMOKE else (2_000 if FULL else 500)
#: Best-of-N timing samples (flattens scheduler noise on small hosts).
SAMPLES = 3

#: The ratio the binary codec must clear on the combined round trip.
ROUNDTRIP_GATE = 2.0

BATCH = 8


def _commands(base: int) -> tuple:
    return tuple(
        Command(
            op="put",
            args=(f"key-{base + i}", base + i),
            client_id=f"client-{i % 4}",
            request_id=base + i,
            uid=base + i,
            writes=True,
        )
        for i in range(BATCH)
    )


def build_panel() -> list:
    """(src, message) pairs for one consensus round plus client traffic."""
    ballot = (3, 1)
    batch = _commands(1000)
    return [
        (0, ClientRequest(batch, 17, "127.0.0.1", 52112, "client-0")),
        (1, Accept(ballot, 42, batch)),
        (2, Accepted(ballot, 42)),
        (1, Decide(42, batch)),
        (1, Heartbeat(ballot, 42)),
        (2, Promise(ballot, {41: (ballot, _commands(2000))})),
        *[(1, ClientResponse(command, None, 1)) for command in batch[:2]],
    ]


def _measure(codec, panel: list) -> dict:
    frames = [codec.encode_frame(src, msg) for src, msg in panel]
    bodies = [frame[codec.header_size:] for frame in frames]
    n_frames = len(panel) * ITERATIONS

    encode_best = decode_best = float("inf")
    for _ in range(SAMPLES):
        begun = time.perf_counter()
        for _ in range(ITERATIONS):
            for src, msg in panel:
                codec.encode_frame(src, msg)
        encode_best = min(encode_best, time.perf_counter() - begun)

        begun = time.perf_counter()
        for _ in range(ITERATIONS):
            for body in bodies:
                codec.decode_frame(body)
        decode_best = min(decode_best, time.perf_counter() - begun)

    encode_fps = n_frames / encode_best
    decode_fps = n_frames / decode_best
    return {
        "codec": codec.name,
        "encode_fps": encode_fps,
        "decode_fps": decode_fps,
        # One frame's full trip: encode once + decode once.
        "roundtrip_fps": n_frames / (encode_best + decode_best),
        "panel_bytes": sum(len(frame) for frame in frames),
        "frame_bytes": {
            type(msg).__name__: len(frame)
            for (_, msg), frame in zip(panel, frames)
        },
    }


def wire_codec_figure() -> FigureData:
    figure = FigureData(
        name="wire_codec",
        title="Wire codec throughput (mixed consensus+client panel, "
              f"{BATCH}-command batches)",
        x_label="direction (0=encode, 1=decode, 2=roundtrip)",
        y_label="frames/s",
    )
    panel = build_panel()
    results = {}
    for name in WIRE_NAMES:
        results[name] = _measure(wire_codec(name), panel)
        for x, key in enumerate(("encode_fps", "decode_fps",
                                 "roundtrip_fps")):
            figure.add_point("throughput", name, x, results[name][key])
        figure.add_point("wire-size", name, 0, results[name]["panel_bytes"])
    json_result, binary_result = results["json"], results["binary"]
    figure.extra = {
        "results": results,
        "iterations": ITERATIONS,
        "smoke": SMOKE,
        "ratios": {
            "encode": binary_result["encode_fps"] / json_result["encode_fps"],
            "decode": binary_result["decode_fps"] / json_result["decode_fps"],
            "roundtrip": (binary_result["roundtrip_fps"]
                          / json_result["roundtrip_fps"]),
            "bytes": (json_result["panel_bytes"]
                      / binary_result["panel_bytes"]),
        },
        "roundtrip_gate": ROUNDTRIP_GATE,
    }
    return figure


def _check_gate(figure: FigureData) -> None:
    ratios = figure.extra["ratios"]
    print(f"[wire_codec] binary/json: encode {ratios['encode']:.2f}x, "
          f"decode {ratios['decode']:.2f}x, "
          f"roundtrip {ratios['roundtrip']:.2f}x, "
          f"bytes {ratios['bytes']:.2f}x smaller")
    # Bytes-on-wire is deterministic: always gated.
    assert ratios["bytes"] > 1.0, (
        f"binary frames are not smaller than JSON "
        f"({ratios['bytes']:.2f}x)")
    if SMOKE:
        # 50-iteration smoke timings are too noisy for a hard throughput
        # gate; require the binary codec to at least beat JSON outright.
        assert ratios["roundtrip"] > 1.0, (
            f"binary codec is slower than JSON even in smoke "
            f"({ratios['roundtrip']:.2f}x)")
        return
    assert ratios["roundtrip"] >= ROUNDTRIP_GATE, (
        f"binary codec roundtrip is only {ratios['roundtrip']:.2f}x JSON "
        f"on the mixed panel; the gate is {ROUNDTRIP_GATE}x")


def test_wire_codec(benchmark):
    figure = benchmark.pedantic(wire_codec_figure, rounds=1, iterations=1)
    emit(figure)
    _check_gate(figure)


def main() -> int:
    global SMOKE, ITERATIONS
    if "--smoke" in sys.argv[1:]:
        SMOKE, ITERATIONS = True, 50
    figure = wire_codec_figure()
    emit(figure)
    _check_gate(figure)
    return 0


if __name__ == "__main__":
    sys.exit(main())
