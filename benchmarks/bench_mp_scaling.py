"""Throughput-vs-workers curve for the multiprocess execution engine.

The experiment behind the repo's "true multi-core speedup" claim
(docs/parallel_execution.md): one replica executes the paper's 0%-write
linked-list workload on the ``mp`` engine at increasing shard counts,
against the ``threaded`` engine as the GIL-bound baseline.  On a
multi-core host the mp curve rises with workers while the threaded curve
stays flat; on a single-CPU host both are flat and the mp engine only
pays IPC overhead, so the speedup assertion is guarded on
``os.cpu_count()``.

Run as a pytest benchmark (``pytest benchmarks/bench_mp_scaling.py``) or
directly (``python benchmarks/bench_mp_scaling.py [--smoke]``).  Results
land in ``benchmarks/results/mp_scaling.txt`` and the machine-readable
``BENCH_mp_scaling.json``.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))  # conftest when run directly

from conftest import RESULTS_DIR, emit

from repro.bench import FigureData, run_benchmark, write_bench_json
from repro.par.bench import MpBenchConfig

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

#: Shard counts swept for the mp curve (thread counts for the baseline).
WORKER_COUNTS = [1, 2] if SMOKE else ([1, 2, 4, 8] if FULL else [1, 2, 4])
#: Each command walks a list this long on average half-way — real CPU work.
KEY_SPACE = 500 if SMOKE else 4_000
MEASURE_OPS = 300 if SMOKE else 2_000
WARM_OPS = 50 if SMOKE else 200


def _point(engine: str, workers: int) -> dict:
    config = MpBenchConfig(
        engine=engine,
        mp_workers=workers,
        workers=workers if engine == "threaded" else 2 * workers,
        write_pct=0.0,              # the paper's best-scaling workload
        key_space=KEY_SPACE,
        warm_ops=WARM_OPS,
        measure_ops=MEASURE_OPS,
    )
    result = run_benchmark("mp", config)
    return {
        "engine": engine,
        "workers": workers,
        "throughput": result.throughput,
        "dispatch_p50": result.dispatch_p50,
        "dispatch_p99": result.dispatch_p99,
        "shard_busy": result.shard_busy,
        "barrier_rounds": result.barrier_rounds,
    }


def mp_scaling() -> FigureData:
    figure = FigureData(
        name="mp_scaling",
        title="Multiprocess engine: throughput vs workers "
              "(0% writes, linked list)",
        x_label="workers",
        y_label="cmds/s",
    )
    points = []
    for engine in ("threaded", "mp"):
        for workers in WORKER_COUNTS:
            point = _point(engine, workers)
            points.append(point)
            figure.add_point("wall-clock", engine, workers,
                             point["throughput"])
    RESULTS_DIR.mkdir(exist_ok=True)
    write_bench_json(
        "mp_scaling",
        {
            "points": points,
            "worker_counts": WORKER_COUNTS,
            "key_space": KEY_SPACE,
            "measure_ops": MEASURE_OPS,
            "smoke": SMOKE,
        },
        str(RESULTS_DIR),
    )
    return figure


def _check_scaling(figure: FigureData) -> None:
    mp_points = dict(figure.panels["wall-clock"]["mp"])
    low, high = min(mp_points), max(mp_points)
    cores = os.cpu_count() or 1
    if cores >= 4 and high >= 4 and not SMOKE:
        # The tentpole claim, only checkable on real cores: >1.5x speedup
        # from 1 to 4+ shard processes on the read-only workload.
        speedup = mp_points[high] / mp_points[low]
        assert speedup > 1.5, (
            f"mp engine speedup {speedup:.2f}x from {low} to {high} workers "
            f"on a {cores}-core host; expected > 1.5x")
    else:
        print(f"[mp_scaling] speedup assertion skipped "
              f"(cpu_count={cores}, max_workers={high}, smoke={SMOKE})")


def test_mp_scaling(benchmark):
    figure = benchmark.pedantic(mp_scaling, rounds=1, iterations=1)
    emit(figure)
    _check_scaling(figure)
    # Engine sanity holds on any host: every configured point measured.
    assert len(figure.panels["wall-clock"]["mp"]) == len(WORKER_COUNTS)


def main() -> int:
    global SMOKE, WORKER_COUNTS, KEY_SPACE, MEASURE_OPS, WARM_OPS
    if "--smoke" in sys.argv[1:]:
        SMOKE = True
        WORKER_COUNTS = [1, 2]
        KEY_SPACE, MEASURE_OPS, WARM_OPS = 500, 300, 50
    figure = mp_scaling()
    emit(figure)
    _check_scaling(figure)
    return 0


if __name__ == "__main__":
    sys.exit(main())
