"""Throughput-vs-workers curve for the multiprocess execution engine.

The experiment behind the repo's "true multi-core speedup" claim
(docs/parallel_execution.md): one replica executes the paper's 0%-write
linked-list workload on the ``mp`` engine at increasing shard counts,
against the ``threaded`` engine as the GIL-bound baseline.  On a
multi-core host the mp curve rises with workers while the threaded curve
stays flat; on a single-CPU host both are flat and the mp engine only
pays IPC overhead, so the speedup assertion is guarded on
``os.cpu_count()``.

Run as a pytest benchmark (``pytest benchmarks/bench_mp_scaling.py``) or
directly (``python benchmarks/bench_mp_scaling.py [--smoke]``).  Results
land in ``benchmarks/results/mp_scaling.txt`` and the machine-readable
``BENCH_mp_scaling.json``.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))  # conftest when run directly

from conftest import emit

from repro.bench import FigureData, run_benchmark
from repro.par.bench import MpBenchConfig

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))

#: Shard counts swept for the mp curve (thread counts for the baseline).
WORKER_COUNTS = [1, 2] if SMOKE else ([1, 2, 4, 8] if FULL else [1, 2, 4])
#: Each command walks a list this long on average half-way — real CPU work.
KEY_SPACE = 500 if SMOKE else 4_000
MEASURE_OPS = 300 if SMOKE else 2_000
WARM_OPS = 50 if SMOKE else 200


#: Measured series: the threaded baseline plus the mp engine with batched
#: dispatch (ParallelReplica's default drain of the COS ready set — one
#: pickle and one queue wakeup per same-shard batch) and with batching
#: disabled (``dispatch_batch=1`` — one IPC round trip per command, the
#: pre-batching behavior).
SERIES = (
    ("threaded", "threaded", None),
    ("mp-batched", "mp", None),
    ("mp-unbatched", "mp", 1),
)


def _point(label: str, engine: str, workers: int, dispatch_batch) -> dict:
    config = MpBenchConfig(
        engine=engine,
        mp_workers=workers,
        workers=workers if engine == "threaded" else 2 * workers,
        write_pct=0.0,              # the paper's best-scaling workload
        key_space=KEY_SPACE,
        warm_ops=WARM_OPS,
        measure_ops=MEASURE_OPS,
        dispatch_batch=dispatch_batch,
    )
    result = run_benchmark("mp", config)
    return {
        "series": label,
        "engine": engine,
        "workers": workers,
        "dispatch_batch": dispatch_batch,
        "throughput": result.throughput,
        "dispatch_p50": result.dispatch_p50,
        "dispatch_p99": result.dispatch_p99,
        "shard_busy": result.shard_busy,
        "barrier_rounds": result.barrier_rounds,
    }


def _crossover(mp_points: dict, threaded_points: dict):
    """Worker count where the mp curve reaches the threaded baseline.

    Returns the smallest measured worker count whose mp/threaded ratio is
    >= 1.  When no measured point crosses (the single-CPU case: the mp
    engine pays IPC overhead with no cores to win back), the ratio trend
    of the last two points is extrapolated linearly to 1.0 — a *projected*
    crossover, recorded as such.  A flat or falling trend projects to
    ``None`` (never crosses).
    """
    counts = sorted(set(mp_points) & set(threaded_points))
    ratios = [(w, mp_points[w] / threaded_points[w]) for w in counts]
    for workers, ratio in ratios:
        if ratio >= 1.0:
            return {"workers": workers, "ratio": ratio,
                    "projected": False, "ratios": ratios}
    if len(ratios) >= 2:
        (w_lo, r_lo), (w_hi, r_hi) = ratios[-2], ratios[-1]
        slope = (r_hi - r_lo) / (w_hi - w_lo)
        if slope > 0:
            return {"workers": w_hi + (1.0 - r_hi) / slope,
                    "ratio": 1.0, "projected": True, "ratios": ratios}
    return {"workers": None, "ratio": ratios[-1][1] if ratios else 0.0,
            "projected": True, "ratios": ratios}


def mp_scaling() -> FigureData:
    figure = FigureData(
        name="mp_scaling",
        title="Multiprocess engine: throughput vs workers "
              "(0% writes, linked list)",
        x_label="workers",
        y_label="cmds/s",
    )
    points = []
    for label, engine, dispatch_batch in SERIES:
        for workers in WORKER_COUNTS:
            point = _point(label, engine, workers, dispatch_batch)
            points.append(point)
            figure.add_point("wall-clock", label, workers,
                             point["throughput"])
    curves = {label: dict(figure.panels["wall-clock"][label])
              for label, _, _ in SERIES}
    crossovers = {
        "batched": _crossover(curves["mp-batched"], curves["threaded"]),
        "unbatched": _crossover(curves["mp-unbatched"], curves["threaded"]),
    }
    figure.extra = {
        "points": points,
        "worker_counts": WORKER_COUNTS,
        "key_space": KEY_SPACE,
        "measure_ops": MEASURE_OPS,
        "smoke": SMOKE,
        "crossover": crossovers,
    }
    return figure


def _check_scaling(figure: FigureData) -> None:
    mp_points = dict(figure.panels["wall-clock"]["mp-batched"])
    low, high = min(mp_points), max(mp_points)
    cores = os.cpu_count() or 1
    if cores >= 4 and high >= 4 and not SMOKE:
        # The tentpole claim, only checkable on real cores: >1.5x speedup
        # from 1 to 4+ shard processes on the read-only workload.
        speedup = mp_points[high] / mp_points[low]
        assert speedup > 1.5, (
            f"mp engine speedup {speedup:.2f}x from {low} to {high} workers "
            f"on a {cores}-core host; expected > 1.5x")
    else:
        print(f"[mp_scaling] speedup assertion skipped "
              f"(cpu_count={cores}, max_workers={high}, smoke={SMOKE})")
    _check_crossover(figure)


def _check_crossover(figure: FigureData) -> None:
    crossovers = figure.extra["crossover"]
    batched = crossovers["batched"]
    unbatched = crossovers["unbatched"]
    for label, data in (("batched", batched), ("unbatched", unbatched)):
        mark = "projected " if data["projected"] else ""
        where = ("never" if data["workers"] is None
                 else f"{data['workers']:.2f} workers")
        print(f"[mp_scaling] {label} mp-vs-threaded crossover: "
              f"{mark}{where} (last ratio {data['ratios'][-1][1]:.3f})")
    if SMOKE:
        return
    # Batched dispatch amortizes the per-command IPC round trip, so the mp
    # engine must reach (or project to reach) the threaded baseline at a
    # strictly lower worker count than unbatched dispatch.  ``None`` means
    # "never crosses" and compares as +inf.
    inf = float("inf")
    batched_at = batched["workers"] if batched["workers"] is not None else inf
    unbatched_at = (unbatched["workers"]
                    if unbatched["workers"] is not None else inf)
    assert batched_at < unbatched_at, (
        f"batched dispatch did not lower the mp-vs-threaded crossover "
        f"(batched {batched_at}, unbatched {unbatched_at})")


def test_mp_scaling(benchmark):
    figure = benchmark.pedantic(mp_scaling, rounds=1, iterations=1)
    emit(figure)
    _check_scaling(figure)
    # Engine sanity holds on any host: every configured point measured.
    assert len(figure.panels["wall-clock"]["mp-batched"]) == \
        len(WORKER_COUNTS)


def main() -> int:
    global SMOKE, WORKER_COUNTS, KEY_SPACE, MEASURE_OPS, WARM_OPS
    if "--smoke" in sys.argv[1:]:
        SMOKE = True
        WORKER_COUNTS = [1, 2]
        KEY_SPACE, MEASURE_OPS, WARM_OPS = 500, 300, 50
    figure = mp_scaling()
    emit(figure)
    _check_scaling(figure)
    return 0


if __name__ == "__main__":
    sys.exit(main())
