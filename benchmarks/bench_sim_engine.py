"""Microbenchmarks of the simulation substrate itself.

The figure harnesses process hundreds of thousands of simulator events per
point; these benches track the event-loop and effect-interpreter rates so
regressions in the substrate are visible independently of the figures.
"""

from __future__ import annotations

from repro.core.effects import Work
from repro.sim import SimRuntime, Simulator


def test_event_loop_rate(benchmark):
    """Raw schedule/dispatch throughput of the event heap."""

    def run():
        sim = Simulator()
        count = 50_000

        def tick():
            nonlocal count
            count -= 1
            if count > 0:
                sim.schedule(1e-6, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 50_000


def test_effect_interpreter_rate(benchmark):
    """Throughput of Work-effect interpretation across processes."""

    def run():
        sim = Simulator()
        runtime = SimRuntime(sim)

        def proc():
            for _ in range(10_000):
                yield Work(2e-6)

        for _ in range(5):
            runtime.spawn(proc())
        sim.run()
        return sim.now

    benchmark(run)


def test_contended_mutex_rate(benchmark):
    """Simulated lock ping-pong: hand-off machinery under contention."""

    from repro.core.effects import Acquire, Release

    def run():
        sim = Simulator()
        runtime = SimRuntime(sim)
        mutex = runtime.mutex()

        def proc():
            for _ in range(5_000):
                yield Acquire(mutex)
                yield Work(1e-6)
                yield Release(mutex)

        for _ in range(4):
            runtime.spawn(proc())
        sim.run()
        return sim.now

    benchmark(run)
